"""Fixture snippets per pass: a violating snippet must produce the
expected diagnostic (rule id + line), and its clean twin must be
silent.  This is the acceptance proof that each registered pass
actually catches the invariant it claims to."""

import textwrap

import pytest

from repro.analysis.engine import SourceModule, get_passes, run_passes


def lint(source, rules):
    """Run the selected passes over one dedented snippet."""
    mod = SourceModule.from_source(textwrap.dedent(source))
    return run_passes([mod], get_passes(rules))


def lines(found):
    return [d.line for d in found]


class TestDtypeWidth:
    RULE = ["dtype-width"]

    def test_literal_width_binding_flagged(self):
        found = lint(
            """
            bytes_per_scalar = 8
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["dtype-width"]
        assert lines(found) == [2]

    def test_width_keyword_flagged(self):
        found = lint("meter = ByteMeter(4, nbytes=8)\n", self.RULE)
        assert len(found) == 1
        assert "nbytes" in found[0].message

    def test_width_arithmetic_flagged(self):
        found = lint("n = 8 * arr.ndim + payload\n", self.RULE)
        assert len(found) == 1
        assert "width-arithmetic" in found[0].message

    def test_dtype_literal_default_flagged(self):
        found = lint(
            """
            import numpy as np
            def f(x, dtype=np.float64):
                return x
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "parameter default" in found[0].message

    def test_annotated_dataclass_default_flagged(self):
        found = lint(
            """
            class Task:
                dtype: str = "float64"
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "annotated default" in found[0].message

    def test_clean_twin_silent(self):
        found = lint(
            """
            import numpy as np
            from repro.tensor.dtype import scalar_nbytes
            _I64 = np.dtype(np.int64).itemsize
            def f(x, dtype=None):
                nbytes = scalar_nbytes(dtype)
                return _I64 * x.ndim + nbytes
            """,
            self.RULE,
        )
        assert found == []

    def test_dtype_policy_layer_exempt(self):
        found = lint(
            """
            # repro-lint: layer=dtype-policy
            bytes_per_scalar = 8
            """,
            self.RULE,
        )
        assert found == []


class TestMetering:
    RULE = ["metering"]

    def test_raw_conn_send_flagged(self):
        found = lint("conn.send(payload)\n", self.RULE)
        assert [d.rule for d in found] == ["metering"]

    def test_raw_constructor_flagged(self):
        found = lint(
            """
            from multiprocessing import Pipe
            a, b = Pipe()
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "Pipe()" in found[0].message

    def test_endpoint_layer_exempt(self):
        found = lint(
            """
            # repro-lint: layer=endpoint
            conn.send(payload)
            """,
            self.RULE,
        )
        assert found == []

    def test_metered_send_clean(self):
        # Transport-level sends (self.comm.send) are the metering plane,
        # not a raw channel — must stay silent.
        found = lint("self.comm.send(dst, count, tag)\n", self.RULE)
        assert found == []


class TestKernelPurity:
    RULE = ["kernel-purity"]

    def test_block_matmul_flagged(self):
        found = lint("out = op.fused_csr @ h\n", self.RULE)
        assert [d.rule for d in found] == ["kernel-purity"]
        assert "fused_csr" in found[0].message

    def test_block_dot_flagged(self):
        found = lint("out = op.boundary_csr.dot(h)\n", self.RULE)
        assert len(found) == 1

    def test_kernels_layer_exempt(self):
        found = lint(
            """
            # repro-lint: layer=kernels
            out = op.fused_csr @ h
            """,
            self.RULE,
        )
        assert found == []

    def test_dispatched_matmul_clean(self):
        found = lint("out = op.matmul(h)\n", self.RULE)
        assert found == []


class TestDiscardedResult:
    RULE = ["discarded-result"]

    def test_discarded_event_wait_flagged(self):
        found = lint(
            """
            def join(self, timeout):
                self._done.wait(timeout)
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["discarded-result"]

    def test_timed_join_without_is_alive_flagged(self):
        found = lint(
            """
            def close(self):
                thread.join(2.0)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "is_alive" in found[0].message

    def test_timed_join_with_is_alive_clean(self):
        found = lint(
            """
            def close(self):
                thread.join(2.0)
                if thread.is_alive():
                    raise RuntimeError("stuck")
            """,
            self.RULE,
        )
        assert found == []

    def test_consumed_wait_clean(self):
        found = lint(
            """
            def join(self, timeout):
                return self._done.wait(timeout)
            """,
            self.RULE,
        )
        assert found == []

    def test_untimed_join_clean(self):
        # join() with no timeout blocks forever — nothing to discard.
        found = lint(
            """
            def close(self):
                thread.join()
            """,
            self.RULE,
        )
        assert found == []


class TestBlockingInLock:
    RULE = ["blocking-in-lock"]

    def test_recv_under_lock_flagged(self):
        found = lint(
            """
            with self.lock:
                data = conn.recv_bytes()
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["blocking-in-lock"]

    def test_waiver_on_with_line_silences_block(self):
        found = lint(
            """
            with self.lock:  # repro-lint: ignore[blocking-in-lock]
                data = conn.recv_bytes()
            """,
            self.RULE,
        )
        assert found == []

    def test_waiver_on_comment_above_silences_block(self):
        found = lint(
            """
            # repro-lint: ignore[blocking-in-lock] — bounded backstop
            with self.lock:
                data = conn.recv_bytes()
            """,
            self.RULE,
        )
        assert found == []

    def test_non_lock_context_clean(self):
        found = lint(
            """
            with open(path) as fh:
                data = fh.read()
            """,
            self.RULE,
        )
        assert found == []

    def test_pure_compute_under_lock_clean(self):
        found = lint(
            """
            with self.lock:
                total = total + 1
            """,
            self.RULE,
        )
        assert found == []


class TestLockOrder:
    RULE = ["lock-order"]

    def test_ab_ba_cycle_flagged(self):
        found = lint(
            """
            def f(self):
                with self.lock_a:
                    with self.lock_b:
                        pass

            def g(self):
                with self.lock_b:
                    with self.lock_a:
                        pass
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert found[0].rule == "lock-order"
        assert "cycle" in found[0].message

    def test_cycle_across_modules_flagged(self):
        mod_a = SourceModule.from_source(
            textwrap.dedent(
                """
                def f(self):
                    with self.lock_a:
                        with self.lock_b:
                            pass
                """
            ),
            path="a.py",
        )
        mod_b = SourceModule.from_source(
            textwrap.dedent(
                """
                def g(self):
                    with self.lock_b:
                        with self.lock_a:
                            pass
                """
            ),
            path="b.py",
        )
        found = run_passes([mod_a, mod_b], get_passes(self.RULE))
        assert len(found) == 1
        # The diagnostic names the other site so the cycle is traceable.
        assert "a.py" in found[0].message or found[0].path == "a.py"

    def test_self_nesting_flagged(self):
        found = lint(
            """
            def f(self):
                with self.locks[i]:
                    with self.locks[j]:
                        pass
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "nested inside itself" in found[0].message

    def test_consistent_order_clean(self):
        found = lint(
            """
            def f(self):
                with self.lock_a:
                    with self.lock_b:
                        pass

            def g(self):
                with self.lock_a:
                    with self.lock_b:
                        pass
            """,
            self.RULE,
        )
        assert found == []

    def test_unnested_locks_clean(self):
        found = lint(
            """
            def f(self):
                with self.lock_a:
                    pass
                with self.lock_b:
                    pass
            """,
            self.RULE,
        )
        assert found == []


class TestDeterminism:
    RULE = ["determinism"]

    def test_unseeded_default_rng_flagged(self):
        found = lint(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["determinism"]
        assert "unseeded" in found[0].message

    def test_legacy_global_rng_flagged(self):
        found = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "global-state" in found[0].message

    def test_wall_clock_flagged(self):
        found = lint(
            """
            import time
            t0 = time.time()
            """,
            self.RULE,
        )
        assert len(found) == 1
        assert "wall-clock" in found[0].message

    def test_stdlib_module_global_random_flagged(self):
        found = lint(
            """
            import random
            random.seed(0)
            x = random.random()
            """,
            self.RULE,
        )
        assert [d.rule for d in found] == ["determinism"] * 2
        assert all("Mersenne" in d.message for d in found)
        assert lines(found) == [3, 4]

    def test_stdlib_random_instance_clean(self):
        found = lint(
            """
            import random
            rng = random.Random(seed)
            x = rng.random()
            """,
            self.RULE,
        )
        assert found == []

    def test_clean_twin_silent(self):
        found = lint(
            """
            import time
            import numpy as np
            rng = np.random.default_rng(seed)
            t0 = time.perf_counter()
            """,
            self.RULE,
        )
        assert found == []


@pytest.mark.parametrize("rule", [
    "dtype-width", "metering", "kernel-purity", "discarded-result",
    "blocking-in-lock", "lock-order", "determinism",
    # Flow-sensitive (CFG) rules — fixtures in test_flow_passes.py.
    "lifecycle", "exception-safety", "typestate",
])
def test_every_registered_pass_has_a_fixture_class(rule):
    """Meta-check: the parametrised rule list above must cover exactly
    the registered passes, so adding a pass without fixtures fails."""
    from repro.analysis.engine import pass_names
    assert rule in pass_names()


def test_no_registered_pass_lacks_fixtures():
    from repro.analysis.engine import pass_names
    covered = {
        "dtype-width", "metering", "kernel-purity", "discarded-result",
        "blocking-in-lock", "lock-order", "determinism",
        "lifecycle", "exception-safety", "typestate",
        # comm_fixtures/ seeds a violation + clean twin per comm rule
        "comm-matching", "comm-deadlock", "comm-exchange",
    }
    assert set(pass_names()) == covered
