"""Self-check: the tree is lint-clean, and the gate actually gates.

This is the CI contract in test form: ``repro lint`` over the real
``src/`` + ``benchmarks/`` tree must produce no findings beyond the
committed baseline (which is empty — every real violation was fixed
with the pass that caught it), and a deliberately seeded violation
must fail the CLI with exit code 1.
"""

from pathlib import Path

from repro.analysis.engine import (
    DEFAULT_BASELINE_NAME,
    diff_against_baseline,
    load_baseline,
)
from repro.analysis.lint import main as lint_main, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_tree_is_clean_against_committed_baseline():
    findings = run_lint(REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    diff = diff_against_baseline(findings, baseline)
    assert diff.new == [], "new lint findings:\n" + "\n".join(
        d.format() for d in diff.new
    )
    # Shrink-only policy: the baseline never carries entries the tree
    # no longer produces.
    assert diff.stale == []


def test_committed_baseline_is_empty():
    # The repo's policy: violations are fixed, not baselined.  If this
    # fails, a finding was frozen instead of fixed — justify or fix.
    assert load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME) == set()


def test_cli_exits_zero_on_clean_tree(capsys):
    code = lint_main(["--root", str(REPO_ROOT), "--strict"])
    assert code == 0
    assert "OK:" in capsys.readouterr().out


def test_cli_fails_on_deliberate_violation(tmp_path, capsys):
    # A scratch tree seeded with one violation per family: the gate
    # must exit 1 and name the rules — this is the proof the CI lint
    # job would catch a regression, demonstrated in-suite.
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(
        "import numpy as np\n"
        "bytes_per_scalar = 8\n"
        "rng = np.random.default_rng()\n"
    )
    code = lint_main(["--root", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "[dtype-width]" in out
    assert "[determinism]" in out
    assert "FAIL" in out


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "legacy.py").write_text("bytes_per_scalar = 8\n")
    assert lint_main(["--root", str(tmp_path)]) == 1
    capsys.readouterr()
    # Freeze the legacy finding; the gate goes green without an edit.
    assert lint_main(["--root", str(tmp_path), "--update-baseline"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(tmp_path), "--strict"]) == 0
    capsys.readouterr()
    # ...but a *new* finding still fails.
    (src / "fresh.py").write_text("nbytes = 4\n")
    assert lint_main(["--root", str(tmp_path)]) == 1


def test_cli_strict_fails_on_stale_baseline(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    bad = src / "legacy.py"
    bad.write_text("bytes_per_scalar = 8\n")
    assert lint_main(["--root", str(tmp_path), "--update-baseline"]) == 0
    capsys.readouterr()
    bad.write_text("x = 1\n")  # violation fixed, baseline now stale
    assert lint_main(["--root", str(tmp_path)]) == 0  # lenient passes
    capsys.readouterr()
    assert lint_main(["--root", str(tmp_path), "--strict"]) == 1
    assert "stale" in capsys.readouterr().out


def test_cli_json_format(tmp_path, capsys):
    import json

    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text("bytes_per_scalar = 8\n")
    code = lint_main(["--root", str(tmp_path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["modules"] == 1
    assert [d["rule"] for d in payload["new"]] == ["dtype-width"]
    assert payload["new"][0]["path"] == "src/bad.py"


def test_cli_list_passes(capsys):
    assert lint_main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    assert "dtype-width" in out
    assert "lock-order" in out
    assert "[project]" in out  # lock-order is the project-wide pass


def test_cli_select_subset(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "bad.py").write_text(
        "import numpy as np\n"
        "bytes_per_scalar = 8\n"
        "rng = np.random.default_rng()\n"
    )
    code = lint_main(["--root", str(tmp_path), "--select", "determinism"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out
    assert "[dtype-width]" not in out
