"""Style gate: when ruff is available, the tree must pass it.

Ruff is an optional tool (the CI lint job installs it); this test
keeps the gate honest in any environment that has it and skips
cleanly everywhere else — same pattern as the numba backend suite.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

ruff = shutil.which("ruff")


@pytest.mark.skipif(ruff is None, reason="ruff not installed")
def test_ruff_clean_on_src_and_benchmarks():
    proc = subprocess.run(
        [ruff, "check", "src", "benchmarks"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_ruff_config_present_and_minimal():
    # The config itself is part of the contract even where ruff isn't:
    # pyflakes + named bugbear picks only, no style-rule creep.
    text = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff.lint]" in text
    assert '"F"' in text
    assert '"B006"' in text
