"""Runtime lock-order sanitizer: inversions raise, clean order passes."""

import threading

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    LockOrderError,
    SanitizedLock,
    install_sanitizer,
    locks_enabled,
    make_lock,
)


@pytest.fixture(autouse=True)
def clean_sanitizer():
    sanitizer.reset()
    yield
    sanitizer.reset()


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert not locks_enabled()
        assert isinstance(make_lock("x"), type(threading.Lock()))

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "locks")
        assert locks_enabled()
        assert isinstance(make_lock("x"), SanitizedLock)

    def test_env_var_token_list(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "asan, locks")
        assert locks_enabled()
        monkeypatch.setenv(sanitizer.ENV_VAR, "asan")
        assert not locks_enabled()

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        install_sanitizer(True)
        assert locks_enabled()
        install_sanitizer(False)
        assert not locks_enabled()


class TestLockSemantics:
    def test_context_manager_acquires_and_releases(self):
        lock = SanitizedLock("a")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nonblocking_acquire_reports_failure(self):
        lock = SanitizedLock("a")
        assert lock.acquire()
        # A second thread cannot take it without blocking.
        result = []
        t = threading.Thread(
            target=lambda: result.append(lock.acquire(blocking=False))
        )
        t.start()
        t.join(5.0)
        assert not t.is_alive()
        assert result == [False]
        lock.release()


class TestOrderChecking:
    def test_ab_ba_inversion_raises(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="inversion"):
                a.acquire()

    def test_inversion_across_threads_raises(self):
        # Thread 1 establishes A→B; the main thread then tries B→A —
        # the interleaving that deadlocks one run in a thousand, caught
        # deterministically on the first run.
        a, b = SanitizedLock("A"), SanitizedLock("B")

        def establish():
            with a:
                with b:
                    pass

        t = threading.Thread(target=establish)
        t.start()
        t.join(5.0)
        assert not t.is_alive()
        with b:
            with pytest.raises(LockOrderError):
                with a:
                    pass

    def test_consistent_order_never_raises(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_same_name_instances_share_order_class(self):
        # Two rings' conn locks share a name: nesting one inside the
        # other is self-nesting of the class, an inversion waiting for
        # the right pair of instances.
        x, y = SanitizedLock("shm-conn"), SanitizedLock("shm-conn")
        with x:
            with pytest.raises(LockOrderError, match="self-nesting"):
                y.acquire()

    def test_reset_graph_clears_observed_edges(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        sanitizer.reset_graph()
        with b:
            with a:  # no A→B edge survives the reset
                pass

    def test_error_names_both_locks_and_first_site(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError) as excinfo:
                a.acquire()
        msg = str(excinfo.value)
        assert "'A'" in msg and "'B'" in msg
        assert "first seen" in msg


class TestTransportIntegration:
    def test_shm_endpoint_locks_are_sanitized_when_enabled(self):
        install_sanitizer(True)
        from repro.dist.transport import _ShmEndpoint

        # Empty channel maps: only the lock construction path runs.
        ep = _ShmEndpoint(0, 2, 8, 1.0, {}, {}, {})
        waiter = ep._waiter(1, "waiting for")
        assert isinstance(waiter.lock, SanitizedLock)
