"""Runtime lock-order sanitizer: inversions raise, clean order passes."""

import threading

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    LockOrderError,
    SanitizedLock,
    install_sanitizer,
    locks_enabled,
    make_lock,
)


@pytest.fixture(autouse=True)
def clean_sanitizer():
    sanitizer.reset()
    yield
    sanitizer.reset()


class TestGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert not locks_enabled()
        assert isinstance(make_lock("x"), type(threading.Lock()))

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "locks")
        assert locks_enabled()
        assert isinstance(make_lock("x"), SanitizedLock)

    def test_env_var_token_list(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "asan, locks")
        assert locks_enabled()
        monkeypatch.setenv(sanitizer.ENV_VAR, "asan")
        assert not locks_enabled()

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        install_sanitizer(True)
        assert locks_enabled()
        install_sanitizer(False)
        assert not locks_enabled()


class TestLockSemantics:
    def test_context_manager_acquires_and_releases(self):
        lock = SanitizedLock("a")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nonblocking_acquire_reports_failure(self):
        lock = SanitizedLock("a")
        assert lock.acquire()
        # A second thread cannot take it without blocking.
        result = []
        t = threading.Thread(
            target=lambda: result.append(lock.acquire(blocking=False))
        )
        t.start()
        t.join(5.0)
        assert not t.is_alive()
        assert result == [False]
        lock.release()


class TestOrderChecking:
    def test_ab_ba_inversion_raises(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError, match="inversion"):
                a.acquire()

    def test_inversion_across_threads_raises(self):
        # Thread 1 establishes A→B; the main thread then tries B→A —
        # the interleaving that deadlocks one run in a thousand, caught
        # deterministically on the first run.
        a, b = SanitizedLock("A"), SanitizedLock("B")

        def establish():
            with a:
                with b:
                    pass

        t = threading.Thread(target=establish)
        t.start()
        t.join(5.0)
        assert not t.is_alive()
        with b:
            with pytest.raises(LockOrderError):
                with a:
                    pass

    def test_consistent_order_never_raises(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        for _ in range(3):
            with a:
                with b:
                    pass

    def test_same_name_instances_share_order_class(self):
        # Two rings' conn locks share a name: nesting one inside the
        # other is self-nesting of the class, an inversion waiting for
        # the right pair of instances.
        x, y = SanitizedLock("shm-conn"), SanitizedLock("shm-conn")
        with x:
            with pytest.raises(LockOrderError, match="self-nesting"):
                y.acquire()

    def test_reset_graph_clears_observed_edges(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        sanitizer.reset_graph()
        with b:
            with a:  # no A→B edge survives the reset
                pass

    def test_error_names_both_locks_and_first_site(self):
        a, b = SanitizedLock("A"), SanitizedLock("B")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError) as excinfo:
                a.acquire()
        msg = str(excinfo.value)
        assert "'A'" in msg and "'B'" in msg
        assert "first seen" in msg


class TestTransportIntegration:
    def test_shm_endpoint_locks_are_sanitized_when_enabled(self):
        install_sanitizer(True)
        from repro.dist.transport import _ShmEndpoint

        # Empty channel maps: only the lock construction path runs.
        ep = _ShmEndpoint(0, 2, 8, 1.0, {}, {}, {})
        waiter = ep._waiter(1, "waiting for")
        assert isinstance(waiter.lock, SanitizedLock)


class TestProtocolGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert not sanitizer.protocol_enabled()
        obj = object()
        assert sanitizer.wrap_protocol(obj) is obj

    def test_env_var_token(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "locks,protocol")
        assert sanitizer.protocol_enabled()
        monkeypatch.setenv(sanitizer.ENV_VAR, "locks")
        assert not sanitizer.protocol_enabled()

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        sanitizer.install_protocol_sanitizer(True)
        assert sanitizer.protocol_enabled()
        sanitizer.install_protocol_sanitizer(False)
        assert not sanitizer.protocol_enabled()

    def test_unknown_class_not_wrapped(self):
        sanitizer.install_protocol_sanitizer(True)

        class Plain:
            pass

        obj = Plain()
        assert sanitizer.wrap_protocol(obj) is obj


class _FakeEndpoint:
    """Class-name suffix matches the endpoint protocol table."""

    def __init__(self):
        self.sent = []

    def send(self, dst, arr, tag=0):
        self.sent.append((dst, tag))
        return "sent"

    def recv(self, src, tag=0):
        return "got"

    def post_exchange(self, parts, peers, tag):
        return _FakeHandle()

    def complete_exchange(self, handle):
        assert isinstance(handle, _FakeHandle)  # proxies are unwrapped
        return "completed"

    def close(self):
        return None


class _FakeHandle:
    pass


class _FakeTransport:
    def launch(self, worker=None):
        if worker is not None:
            return worker()
        return "done"


class TestTypestateProxy:
    @pytest.fixture(autouse=True)
    def enabled(self):
        sanitizer.install_protocol_sanitizer(True)
        yield

    def test_wraps_and_preserves_isinstance(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        assert type(ep) is sanitizer.TypestateProxy
        assert isinstance(ep, _FakeEndpoint)

    def test_already_wrapped_is_identity(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        assert sanitizer.wrap_protocol(ep) is ep

    def test_legal_traffic_passes_through(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        assert ep.send(1, b"x") == "sent"
        assert ep.recv(1) == "got"
        ep.close()

    def test_send_after_close_raises(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        ep.close()
        with pytest.raises(sanitizer.ProtocolError, match="closed endpoint"):
            ep.send(1, b"x")

    def test_double_close_raises(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        ep.close()
        with pytest.raises(sanitizer.ProtocolError, match="twice"):
            ep.close()

    def test_handle_completed_twice_raises(self):
        ep = sanitizer.wrap_protocol(_FakeEndpoint())
        handle = ep.post_exchange({}, [], "t")
        # The produced handle is itself proxied (the `.post_exchange`
        # constructor pattern), and unwrapped before forwarding.
        assert type(handle) is sanitizer.TypestateProxy
        assert ep.complete_exchange(handle) == "completed"
        with pytest.raises(sanitizer.ProtocolError, match="twice"):
            ep.complete_exchange(handle)

    def test_sequential_launches_legal(self):
        t = sanitizer.wrap_protocol(_FakeTransport())
        assert t.launch() == "done"
        assert t.launch() == "done"

    def test_reentrant_launch_raises(self):
        t = sanitizer.wrap_protocol(_FakeTransport())
        with pytest.raises(sanitizer.ProtocolError, match="double-launch"):
            t.launch(lambda: t.launch())

    def test_failed_call_still_completes_event(self):
        class _BoomTransport:
            def launch(self):
                raise ValueError("boom")

        t = sanitizer.wrap_protocol(_BoomTransport())
        with pytest.raises(ValueError):
            t.launch()
        # launch_done fired in the finally: the transport is reusable.
        with pytest.raises(ValueError):
            t.launch()

    def test_attribute_passthrough(self):
        raw = _FakeEndpoint()
        ep = sanitizer.wrap_protocol(raw)
        ep.send(0, b"")
        assert ep.sent == raw.sent
        ep.extra = 7  # settattr forwards to the wrapped object
        assert raw.extra == 7
