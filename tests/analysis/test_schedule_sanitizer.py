"""Runtime mirror of the comm passes: REPRO_SANITIZE=schedule.

Every seeded-violation fixture that the static passes flag must also
be caught dynamically by the schedule explorer, and every clean twin
must run clean under it — the two checkers share one model of the
transport's rendezvous semantics.
"""

import pytest

from repro.analysis import sanitizer
from repro.dist.transport import LocalTransport, TransportError
from tests.analysis.comm_fixtures.clean_twins import (
    completed_exchange_worker,
    matched_tags_worker,
    safe_ring_worker,
    shared_allreduce_worker,
)
from tests.analysis.comm_fixtures.crossed_tags import crossed_tags_worker
from tests.analysis.comm_fixtures.leak_exchange import leak_exchange_worker
from tests.analysis.comm_fixtures.lonely_allreduce import (
    lonely_allreduce_worker,
)
from tests.analysis.comm_fixtures.send_cycle import send_cycle_worker


@pytest.fixture(autouse=True)
def _schedule_mode():
    sanitizer.install_schedule_sanitizer(True, seed=3)
    try:
        yield
    finally:
        sanitizer.reset()


def _launch(worker, world=3, timeout=20.0):
    transport = LocalTransport(world, recv_timeout=5.0)
    return transport.launch(worker, timeout=timeout)


def test_send_cycle_confirmed_as_deadlock():
    with pytest.raises(TransportError) as err:
        _launch(send_cycle_worker)
    text = str(err.value)
    assert "DeadlockError" in text
    assert "schedule trace" in text
    assert "REPRO_SCHEDULE_SEED" in text  # replay line


def test_lonely_allreduce_waits_on_finished_rank():
    with pytest.raises(TransportError) as err:
        _launch(lonely_allreduce_worker)
    assert "DeadlockError" in str(err.value)


def test_leaked_exchange_raises_at_rank_boundary():
    with pytest.raises(TransportError) as err:
        _launch(leak_exchange_worker)
    text = str(err.value)
    assert "ScheduleError" in text
    assert "never completed" in text


def test_crossed_tags_fail_fast():
    # The transport's own tag check fires on delivery; the explorer's
    # job is only to make sure the schedule still reaches it.
    with pytest.raises(TransportError) as err:
        _launch(crossed_tags_worker, world=2)
    assert "tag" in str(err.value)


@pytest.mark.parametrize("worker", [
    matched_tags_worker,
    safe_ring_worker,
    shared_allreduce_worker,
    completed_exchange_worker,
])
def test_clean_twins_run_clean(worker):
    results = _launch(worker)
    assert len(results) == 3


def test_trace_replays_deterministically():
    texts = []
    for _ in range(2):
        sanitizer.reset()
        sanitizer.install_schedule_sanitizer(True, seed=7)
        with pytest.raises(TransportError) as err:
            _launch(send_cycle_worker)
        texts.append(str(err.value))
    # Same seed, same fixture: the deadlock report (ranks, waits,
    # replay line) is identical across runs.
    markers = [
        [ln for ln in t.splitlines() if "replay:" in ln] for t in texts
    ]
    assert markers[0] == markers[1] and markers[0]


def test_disabled_explorer_is_inert():
    sanitizer.reset()  # back to plain queues
    results = _launch(shared_allreduce_worker)
    assert len(results) == 3
