"""Unit + property tests for the interprocedural comm summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import SourceModule
from repro.analysis.summaries import (
    CommInterpreter,
    EndpointVal,
    ProgramIndex,
    Sym,
    TagPrefix,
    Unknown,
    direct_comm_ops,
    tags_may_match,
)


def _interpret(text, entry="main", rank=0, world=4):
    module = SourceModule.from_source(text, path="gen/mod.py")
    program = ProgramIndex([module])
    info = program.functions[f"gen/mod.py::{entry}"]
    interp = CommInterpreter(program, rank, world)
    interp.run(info, {
        "ep": EndpointVal("Endpoint", {"rank": rank, "num_parts": world}),
        "x": Unknown("x"),
    })
    return module, program, interp


# ----------------------------------------------------------------------
# Direct extraction + symbolic peers/tags
# ----------------------------------------------------------------------
def test_symbolic_ring_peers_resolve_per_rank():
    text = (
        "def main(ep, x):\n"
        "    succ = (ep.rank + 1) % ep.num_parts\n"
        "    pred = (ep.rank - 1) % ep.num_parts\n"
        "    ep.send(succ, x, 'ring')\n"
        "    ep.recv(pred, 'ring')\n"
    )
    _, _, interp = _interpret(text, rank=3, world=4)
    kinds = [(e.kind, e.peer, e.tag) for e in interp.events]
    assert kinds == [("send", 0, "ring"), ("recv", 2, "ring")]


def test_helper_summaries_propagate_through_calls():
    text = (
        "def ship(ep, x, dst):\n"
        "    ep.send(dst, x, 'fwd')\n"
        "def main(ep, x):\n"
        "    ship(ep, x, 1)\n"
        "    ep.recv(1, 'fwd')\n"
    )
    _, program, interp = _interpret(text)
    assert program.functions["gen/mod.py::main"].may_comm
    assert [(e.kind, e.peer) for e in interp.events] == [
        ("send", 1), ("recv", 1),
    ]
    # The inlined event carries the helper's frame, not the caller's.
    assert interp.events[0].frame.endswith("::ship")


def test_recursion_widens_but_terminates():
    text = (
        "def ping(ep, x, n):\n"
        "    ep.send(1, x, 'p')\n"
        "    pong(ep, x, n)\n"
        "def pong(ep, x, n):\n"
        "    ep.recv(1, 'p')\n"
        "    ping(ep, x, n)\n"
        "def main(ep, x):\n"
        "    ping(ep, x, 3)\n"
    )
    _, _, interp = _interpret(text)
    # One unrolling of the mutual cycle, then the widened tail.
    assert [e.kind for e in interp.events] == ["send", "recv"]


def test_fstring_tag_becomes_prefix():
    text = (
        "def main(ep, x):\n"
        "    ep.send(1, x, f'layer-{x}')\n"
    )
    _, _, interp = _interpret(text)
    tag = interp.events[0].tag
    assert isinstance(tag, TagPrefix) and tag.prefix == "layer-"


def test_tags_may_match_rules():
    assert tags_may_match("a", "a")
    assert not tags_may_match("a", "b")
    assert tags_may_match(Unknown("?"), "a")
    assert tags_may_match(Sym("t"), Sym("t"))
    assert tags_may_match(TagPrefix("layer-"), "layer-3")
    assert not tags_may_match(TagPrefix("layer-"), "grad")


def test_rank_loop_decision_fork_is_consistent():
    # The same unknown condition consulted twice resolves identically
    # within one scenario (keyed by value origin, not by if-site).
    text = (
        "def main(ep, x):\n"
        "    warm = x\n"
        "    if warm:\n"
        "        ep.send(1, x, 'a')\n"
        "    if warm:\n"
        "        ep.recv(1, 'a')\n"
    )
    _, _, interp = _interpret(text)
    kinds = [e.kind for e in interp.events]
    assert kinds in ([], ["send", "recv"])  # never just one of the two


# ----------------------------------------------------------------------
# Property: random call graphs (cycles included) terminate, and the
# entry's own events match direct extraction exactly.
# ----------------------------------------------------------------------
_N_FUNCS = 4

_op = st.one_of(
    st.tuples(st.just("send"), st.integers(0, 3), st.sampled_from("ab")),
    st.tuples(st.just("recv"), st.integers(0, 3), st.sampled_from("ab")),
    st.tuples(st.just("allreduce"), st.just(0), st.sampled_from("ab")),
    st.tuples(st.just("call"), st.integers(0, _N_FUNCS - 1), st.just("")),
)

_bodies = st.lists(
    st.lists(_op, max_size=4), min_size=_N_FUNCS, max_size=_N_FUNCS
)


def _render(bodies):
    chunks = []
    for i, body in enumerate(bodies):
        lines = [f"def f{i}(ep, x):"]
        for op, arg, tag in body:
            if op == "call":
                lines.append(f"    f{arg}(ep, x)")
            elif op == "allreduce":
                lines.append(f"    ep.allreduce(x, '{tag}')")
            else:
                lines.append(f"    ep.{op}({arg}, x, '{tag}')"
                             if op == "send"
                             else f"    ep.recv({arg}, '{tag}')")
        lines.append("    return None")
        chunks.append("\n".join(lines))
    return "\n".join(chunks) + "\n"


@settings(max_examples=60, deadline=None)
@given(_bodies)
def test_random_call_graphs_terminate_and_match_direct(bodies):
    text = _render(bodies)
    module = SourceModule.from_source(text, path="gen/prop.py")
    program = ProgramIndex([module])
    entry = program.functions["gen/prop.py::f0"]
    interp = CommInterpreter(program, rank=1, world=4)
    interp.run(entry, {
        "ep": EndpointVal("Endpoint", {"rank": 1, "num_parts": 4}),
        "x": Unknown("x"),
    })
    # Terminated (no hang, no budget blowup) — now the entry frame's
    # own events must be exactly its direct ops, in source order,
    # regardless of what the (possibly cyclic) callees contributed.
    kind_of = {"send": "send", "recv": "recv", "allreduce": "coll"}
    expected = [
        (d.site, kind_of[d.op]) for d in entry.direct_ops
        if d.op in kind_of
    ]
    actual = [
        (e.site, e.kind) for e in interp.events
        if e.frame == entry.qualname and e.kind in ("send", "recv", "coll")
    ]
    assert actual == expected


def test_budget_stops_runaway_interpretation():
    text = (
        "def main(ep, x):\n"
        "    for i in range(50):\n"
        "        for j in range(50):\n"
        "            ep.send(1, x, 'a')\n"
    )
    module = SourceModule.from_source(text, path="gen/budget.py")
    program = ProgramIndex([module])
    info = program.functions["gen/budget.py::main"]
    interp = CommInterpreter(program, 0, 2, op_budget=200)
    from repro.analysis.summaries import BudgetExceeded
    with pytest.raises(BudgetExceeded):
        interp.run(info, {
            "ep": EndpointVal("Endpoint", {"rank": 0, "num_parts": 2}),
            "x": Unknown("x"),
        })
