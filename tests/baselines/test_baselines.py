"""Sampling-based baseline trainers: each learns, samples correctly,
and records the bookkeeping the time model needs."""

import numpy as np
import pytest

from repro.baselines import (
    ClusterGCNTrainer,
    FastGCNTrainer,
    FullGraphTrainer,
    GraphSaintTrainer,
    LadiesTrainer,
    NeighborSamplingTrainer,
    SAMPLERS,
    VRGCNTrainer,
)
from repro.nn import GCNModel, GraphSAGEModel


def sage_model(graph, seed=0, hidden=16, layers=2, dropout=0.1):
    return GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed),
    )


def gcn_model(graph, seed=0, hidden=16, layers=2, dropout=0.1):
    return GCNModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed),
    )


class TestFullGraphTrainer:
    def test_loss_decreases(self, small_graph):
        t = FullGraphTrainer(small_graph, sage_model(small_graph), lr=0.01)
        losses = t.train(20)
        assert losses[-1] < losses[0]

    def test_evaluate_keys(self, small_graph):
        t = FullGraphTrainer(small_graph, sage_model(small_graph))
        scores = t.evaluate()
        assert set(scores) == {"train", "val", "test"}

    def test_bad_aggregation(self, small_graph):
        with pytest.raises(ValueError):
            FullGraphTrainer(small_graph, sage_model(small_graph), aggregation="max")

    def test_multilabel(self, multilabel_graph):
        t = FullGraphTrainer(multilabel_graph, sage_model(multilabel_graph))
        loss = t.train_epoch()
        assert np.isfinite(loss)


class TestNeighborSampling:
    def test_learns(self, small_graph):
        t = NeighborSamplingTrainer(
            small_graph, sage_model(small_graph), fanout=5, batch_size=128, seed=0
        )
        h = t.train(8, eval_every=8)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_invalid_fanout(self, small_graph):
        with pytest.raises(ValueError):
            NeighborSamplingTrainer(small_graph, sage_model(small_graph), fanout=0)

    def test_records_sampling_stats(self, small_graph):
        t = NeighborSamplingTrainer(
            small_graph, sage_model(small_graph), fanout=3, batch_size=128
        )
        t.train_epoch()
        assert t.history.sampler_edges[-1] > 0
        assert t.history.compute_flops[-1] > 0

    def test_block_respects_fanout(self, small_graph):
        t = NeighborSamplingTrainer(
            small_graph, sage_model(small_graph), fanout=4, batch_size=64
        )
        dst = np.flatnonzero(small_graph.train_mask)[:50]
        src, block, self_pos, _ = t._sample_block(dst)
        row_counts = np.diff(block.indptr)
        assert row_counts.max() <= 4
        # Self positions point back at the dst nodes inside src.
        np.testing.assert_array_equal(src[self_pos], dst)

    def test_block_rows_are_sample_means(self, small_graph):
        t = NeighborSamplingTrainer(
            small_graph, sage_model(small_graph), fanout=4, batch_size=64
        )
        dst = np.flatnonzero(small_graph.train_mask)[:20]
        _, block, _, _ = t._sample_block(dst)
        sums = np.asarray(block.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)


class TestFastGCN:
    def test_learns(self, small_graph):
        t = FastGCNTrainer(
            small_graph, gcn_model(small_graph), layer_size=128, batch_size=128, seed=0
        )
        h = t.train(8, eval_every=8)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_invalid_layer_size(self, small_graph):
        with pytest.raises(ValueError):
            FastGCNTrainer(small_graph, gcn_model(small_graph), layer_size=0)

    def test_importance_distribution_normalised(self, small_graph):
        t = FastGCNTrainer(small_graph, gcn_model(small_graph))
        assert t._q.sum() == pytest.approx(1.0)
        assert (t._q >= 0).all()


class TestLadies:
    def test_learns(self, small_graph):
        t = LadiesTrainer(
            small_graph, gcn_model(small_graph), layer_size=128, batch_size=128, seed=0
        )
        h = t.train(8, eval_every=8)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_source_sets_contain_dst(self, small_graph):
        # LADIES keeps destination nodes in the source set (self loops).
        t = LadiesTrainer(small_graph, gcn_model(small_graph), layer_size=32)
        batch = np.flatnonzero(small_graph.train_mask)[:16]
        t.train_step(batch)  # exercises set construction without error


class TestClusterGCN:
    def test_learns(self, small_graph):
        t = ClusterGCNTrainer(
            small_graph, sage_model(small_graph), num_clusters=8,
            clusters_per_batch=2, seed=0,
        )
        h = t.train(8, eval_every=8)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_invalid_cluster_config(self, small_graph):
        with pytest.raises(ValueError):
            ClusterGCNTrainer(
                small_graph, sage_model(small_graph),
                num_clusters=4, clusters_per_batch=8,
            )

    def test_clustering_cost_recorded(self, small_graph):
        t = ClusterGCNTrainer(
            small_graph, sage_model(small_graph), num_clusters=8, clusters_per_batch=2
        )
        assert t.clustering_seconds > 0
        assert t.clustering_edges == small_graph.adj.nnz

    def test_epoch_visits_every_cluster_once(self, small_graph):
        t = ClusterGCNTrainer(
            small_graph, sage_model(small_graph), num_clusters=8, clusters_per_batch=2
        )
        visited = []
        for nodes in t._batches():
            visited.extend(nodes.tolist())
        assert sorted(visited) == list(range(small_graph.num_nodes))


class TestGraphSaint:
    @pytest.mark.parametrize("sampler", sorted(SAMPLERS))
    def test_each_sampler_trains(self, small_graph, sampler):
        t = GraphSaintTrainer(
            small_graph, sage_model(small_graph), sampler=sampler,
            budget=150, seed=0,
        )
        loss = t.train_epoch()
        assert np.isfinite(loss)

    def test_unknown_sampler(self, small_graph):
        with pytest.raises(ValueError):
            GraphSaintTrainer(small_graph, sage_model(small_graph), sampler="bfs")

    def test_learns(self, small_graph):
        t = GraphSaintTrainer(
            small_graph, sage_model(small_graph), sampler="node", budget=200, seed=0
        )
        h = t.train(10, eval_every=10)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_sampler_overhead_recorded(self, small_graph):
        t = GraphSaintTrainer(
            small_graph, sage_model(small_graph), sampler="rw", budget=150
        )
        t.train_epoch()
        assert t.history.sampler_edges[-1] > 0


class TestVRGCN:
    def test_learns(self, small_graph):
        t = VRGCNTrainer(
            small_graph, sage_model(small_graph), fanout=2, batch_size=128, seed=0
        )
        h = t.train(6, eval_every=6)
        assert h.test_metric[-1] > 1.5 / small_graph.num_classes

    def test_invalid_fanout(self, small_graph):
        with pytest.raises(ValueError):
            VRGCNTrainer(small_graph, sage_model(small_graph), fanout=0)

    def test_history_memory_overhead(self, small_graph):
        t = VRGCNTrainer(small_graph, sage_model(small_graph, hidden=32, layers=3))
        # Histories: raw features + one hidden layer per extra layer.
        expected = small_graph.num_nodes * (small_graph.feature_dim + 32 + 32) * 8
        assert t.history_bytes == expected

    def test_history_refreshed_for_batch(self, small_graph):
        t = VRGCNTrainer(
            small_graph, sage_model(small_graph), fanout=2, batch_size=64, seed=0
        )
        before = t._history[1].copy()
        batch = np.flatnonzero(small_graph.train_mask)[:64]
        t.train_step(batch)
        assert not np.allclose(t._history[1][batch], before[batch])
