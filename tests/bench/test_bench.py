"""Bench harness: tables, time model, config runner plumbing."""

import os

import numpy as np
import pytest

from repro.bench import (
    BENCH_CONFIGS,
    SECONDS_PER_SAMPLER_EDGE,
    banner,
    baseline_epoch_seconds,
    format_series,
    format_table,
    get_graph,
    get_partition,
    make_model,
    make_trainer,
    memory_for,
    sampler_overhead_fraction,
    save_result,
)
from repro.core import BoundaryNodeSampler


class TestTables:
    def test_basic_table(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["h"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment(self):
        out = format_table(["col"], [["longvalue"], ["x"]])
        lines = out.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_series(self):
        out = format_series("x", [1, 2], {"y1": [10, 20], "y2": [30, 40]})
        assert "y1" in out and "40" in out

    def test_banner(self):
        out = banner("Hello")
        assert "Hello" in out
        assert "=====" in out


class TestTimeModel:
    def test_compute_only(self):
        t = baseline_epoch_seconds(8e11, 0)
        assert t == pytest.approx(1.0)

    def test_sampling_adds(self):
        t = baseline_epoch_seconds(0, 1e9)
        assert t == pytest.approx(1e9 * SECONDS_PER_SAMPLER_EDGE)

    def test_overhead_fraction_bounds(self):
        f = sampler_overhead_fraction(1e10, 1e9)
        assert 0.0 < f < 1.0

    def test_overhead_zero_when_no_sampling(self):
        assert sampler_overhead_fraction(1e10, 0) == 0.0

    def test_graphsaint_calibration_ballpark(self):
        """The constant should put edge-proportional samplers in the
        ~20% overhead regime the GraphSAINT paper reports."""
        # A subgraph whose sampling touches as many edges as one
        # forward pass aggregates, with d=128 features:
        nnz = 1e7
        flops = 3 * 2 * nnz * 128 * 2  # 2 layers, fwd+bwd
        frac = sampler_overhead_fraction(flops, nnz)
        assert 0.05 < frac < 0.5


class TestHarness:
    def test_configs_cover_datasets(self):
        assert set(BENCH_CONFIGS) == {
            "reddit-sim", "products-sim", "yelp-sim", "papers-sim"
        }

    def test_graph_cached(self):
        a = get_graph("yelp-sim")
        b = get_graph("yelp-sim")
        assert a is b

    def test_partition_cached(self):
        a = get_partition("yelp-sim", 3)
        b = get_partition("yelp-sim", 3)
        assert a is b

    def test_make_model_dims(self):
        g = get_graph("yelp-sim")
        cfg = BENCH_CONFIGS["yelp-sim"]
        m = make_model(g, cfg)
        assert m.num_layers == cfg.num_layers
        assert m.dims[0] == g.feature_dim
        assert m.dims[-1] == g.num_classes

    def test_make_trainer_runs_epoch(self):
        t = make_trainer("yelp-sim", 3, BoundaryNodeSampler(0.5))
        loss = t.train_epoch()
        assert np.isfinite(loss)

    def test_memory_for_decreases_with_p(self):
        hi = memory_for("yelp-sim", 3, 1.0).sum()
        lo = memory_for("yelp-sim", 3, 0.1).sum()
        assert lo < hi

    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        import repro.bench.harness as hz

        monkeypatch.setattr(hz, "RESULTS_DIR", str(tmp_path))
        path = hz.save_result("unit-test", "hello world")
        assert os.path.exists(path)
        assert "hello world" in open(path).read()
