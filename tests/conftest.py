"""Shared fixtures: small deterministic graphs, partitions and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import SyntheticSpec, generate_graph
from repro.partition import partition_graph


TINY_SPEC = SyntheticSpec(
    n=120,
    num_communities=4,
    avg_degree=8.0,
    homophily=0.8,
    degree_exponent=2.5,
    feature_dim=12,
    feature_signal=0.5,
    name="tiny",
)

SMALL_SPEC = SyntheticSpec(
    n=400,
    num_communities=8,
    avg_degree=12.0,
    homophily=0.75,
    degree_exponent=2.0,
    feature_dim=16,
    feature_signal=0.3,
    name="small",
)

MULTILABEL_SPEC = SyntheticSpec(
    n=200,
    num_communities=5,
    avg_degree=8.0,
    homophily=0.8,
    feature_dim=12,
    feature_signal=0.5,
    multilabel=True,
    num_labels=6,
    labels_per_node=2.0,
    name="tiny-multilabel",
)


@pytest.fixture(scope="session")
def tiny_graph():
    return generate_graph(TINY_SPEC, seed=3)


@pytest.fixture(scope="session")
def small_graph():
    return generate_graph(SMALL_SPEC, seed=5)


@pytest.fixture(scope="session")
def multilabel_graph():
    return generate_graph(MULTILABEL_SPEC, seed=11)


@pytest.fixture(scope="session")
def tiny_partition(tiny_graph):
    return partition_graph(tiny_graph, 3, method="metis", seed=0)


@pytest.fixture(scope="session")
def small_partition(small_graph):
    return partition_graph(small_graph, 4, method="metis", seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
