"""Sampling-rate auto-tuning (Appendix E operationalised)."""

import numpy as np
import pytest

from repro.core import (
    DistributedTrainer,
    PerPartitionSampler,
    balanced_rates,
    max_rate_for_memory,
)
from repro.dist import MemoryModel
from repro.dist.systems import build_workload
from repro.nn import GraphSAGEModel
from repro.nn.models import layer_dims


@pytest.fixture()
def workload(small_graph, small_partition):
    dims = layer_dims(small_graph.feature_dim, 16, small_graph.num_classes, 2)
    return build_workload(small_graph, small_partition, dims, model_params=1000)


def mem_at(workload, rates):
    mm = MemoryModel()
    return mm.per_partition_bytes(
        workload.inner_sizes,
        workload.boundary_sizes * np.asarray(rates),
        workload.layer_dims,
        workload.model_params,
    )


class TestMaxRateForMemory:
    def test_huge_budget_gives_one(self, workload):
        assert max_rate_for_memory(workload, 1e15) == 1.0

    def test_impossible_budget_gives_minus_one(self, workload):
        assert max_rate_for_memory(workload, 1.0) == -1.0

    def test_mid_budget_is_tight(self, workload):
        lo = mem_at(workload, np.zeros(workload.num_parts)).max()
        hi = mem_at(workload, np.ones(workload.num_parts)).max()
        budget = (lo + hi) / 2
        p = max_rate_for_memory(workload, budget)
        assert 0.0 < p < 1.0
        # Fits at p, violates at slightly higher p.
        assert mem_at(workload, np.full(workload.num_parts, p)).max() <= budget * (1 + 1e-9)
        worse = mem_at(workload, np.full(workload.num_parts, min(p + 0.05, 1.0)))
        assert worse.max() > budget

    def test_monotone_in_budget(self, workload):
        budgets = np.linspace(
            mem_at(workload, np.zeros(workload.num_parts)).max() * 1.01,
            mem_at(workload, np.ones(workload.num_parts)).max() * 1.01,
            5,
        )
        ps = [max_rate_for_memory(workload, b) for b in budgets]
        assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))

    def test_rejects_nonpositive_budget(self, workload):
        with pytest.raises(ValueError):
            max_rate_for_memory(workload, 0.0)


class TestBalancedRates:
    def test_never_below_target(self, workload):
        rates = balanced_rates(workload, p_target=0.1)
        assert (rates >= 0.1 - 1e-12).all()
        assert (rates <= 1.0 + 1e-12).all()

    def test_straggler_keeps_target(self, workload):
        rates = balanced_rates(workload, p_target=0.1)
        mem_uniform = mem_at(workload, np.full(workload.num_parts, 0.1))
        straggler = int(np.argmax(mem_uniform))
        assert rates[straggler] == pytest.approx(0.1, abs=1e-9)

    def test_reduces_memory_spread(self, workload):
        uniform = np.full(workload.num_parts, 0.1)
        balanced = balanced_rates(workload, p_target=0.1)
        mem_u = mem_at(workload, uniform)
        mem_b = mem_at(workload, balanced)
        # Max unchanged (straggler pinned), min raised -> spread shrinks.
        assert mem_b.max() <= mem_u.max() * (1 + 1e-9)
        assert (mem_b.max() - mem_b.min()) <= (mem_u.max() - mem_u.min()) + 1e-6

    def test_p_max_caps(self, workload):
        rates = balanced_rates(workload, p_target=0.1, p_max=0.3)
        assert (rates <= 0.3 + 1e-12).all()

    def test_target_one_is_identity(self, workload):
        rates = balanced_rates(workload, p_target=1.0)
        np.testing.assert_allclose(rates, 1.0)

    def test_validates_arguments(self, workload):
        with pytest.raises(ValueError):
            balanced_rates(workload, p_target=1.5)
        with pytest.raises(ValueError):
            balanced_rates(workload, p_target=0.5, p_max=0.4)


class TestPerPartitionSampler:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            PerPartitionSampler([])
        with pytest.raises(ValueError):
            PerPartitionSampler([0.5, 1.5])

    def test_rank_rate_is_applied(self, small_graph, small_partition):
        from repro.core.bns import PartitionRuntime

        runtime = PartitionRuntime(small_graph, small_partition)
        m = small_partition.num_parts
        # rate 1 on rank 0, rate 0 on the others.
        sampler = PerPartitionSampler([1.0] + [0.0] * (m - 1))
        rng = np.random.default_rng(0)
        plan0 = sampler.plan(runtime.ranks[0], rng)
        assert len(plan0.kept_positions) == runtime.ranks[0].n_boundary
        plan1 = sampler.plan(runtime.ranks[1], rng)
        assert len(plan1.kept_positions) == 0

    def test_too_few_rates_raises(self, small_graph, small_partition):
        from repro.core.bns import PartitionRuntime

        runtime = PartitionRuntime(small_graph, small_partition)
        sampler = PerPartitionSampler([0.5])
        rng = np.random.default_rng(0)
        with pytest.raises(IndexError):
            sampler.plan(runtime.ranks[1], rng)

    def test_trains_end_to_end(self, small_graph, small_partition, workload):
        rates = balanced_rates(workload, p_target=0.3)
        model = GraphSAGEModel(
            small_graph.feature_dim, 16, small_graph.num_classes, 2, 0.0,
            np.random.default_rng(0),
        )
        t = DistributedTrainer(
            small_graph, small_partition, model,
            PerPartitionSampler(rates), lr=0.01,
        )
        h = t.train(15)
        assert h.loss[-1] < h.loss[0]
