"""Property-based tests for the sampling-rate auto-tuner: the Eq. 4
memory model is affine in p, so these invariants must hold on *any*
workload, not just the fixture graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import balanced_rates, max_rate_for_memory
from repro.dist import MemoryModel
from repro.dist.systems import Workload


@st.composite
def workloads(draw):
    m = draw(st.integers(2, 12))
    inner = draw(
        st.lists(st.integers(50, 5000), min_size=m, max_size=m)
    )
    boundary = draw(
        st.lists(st.integers(0, 20000), min_size=m, max_size=m)
    )
    # Pair matrix consistent with the boundary totals: attribute each
    # B_i to a single other rank (enough for the memory model, which
    # only reads the column sums).
    pair = np.zeros((m, m), dtype=np.int64)
    for i, b in enumerate(boundary):
        pair[(i + 1) % m, i] = b
    dims = draw(st.lists(st.integers(4, 128), min_size=2, max_size=4))
    return Workload(
        inner_sizes=np.array(inner),
        boundary_pair_counts=pair,
        nnz_inner=np.array(inner) * 4,
        nnz_boundary=np.array(boundary),
        layer_dims=dims,
        model_params=draw(st.integers(0, 100000)),
        num_nodes=int(sum(inner)),
    )


def memory(workload, rates):
    return MemoryModel().per_partition_bytes(
        workload.inner_sizes,
        workload.boundary_sizes * np.asarray(rates),
        workload.layer_dims,
        workload.model_params,
    )


class TestMaxRateProperties:
    @given(workloads(), st.floats(0.05, 0.95))
    @settings(max_examples=60, deadline=None)
    def test_returned_rate_fits_budget(self, w, frac):
        lo = memory(w, np.zeros(w.num_parts)).max()
        hi = memory(w, np.ones(w.num_parts)).max()
        budget = lo + frac * (hi - lo)
        p = max_rate_for_memory(w, budget)
        if p < 0:
            assert lo > budget
        else:
            assert memory(w, np.full(w.num_parts, p)).max() <= budget * (1 + 1e-9)

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_full_budget_is_one(self, w):
        hi = memory(w, np.ones(w.num_parts)).max()
        assert max_rate_for_memory(w, hi * 1.001) == 1.0


class TestBalancedRatesProperties:
    @given(workloads(), st.floats(0.01, 0.99))
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_peak(self, w, p_target):
        rates = balanced_rates(w, p_target=p_target)
        assert (rates >= p_target - 1e-12).all()
        assert (rates <= 1.0 + 1e-12).all()
        mem_u = memory(w, np.full(w.num_parts, p_target))
        mem_b = memory(w, rates)
        # Peak never grows; spread never grows.
        assert mem_b.max() <= mem_u.max() * (1 + 1e-9)
        assert (mem_b.max() - mem_b.min()) <= (mem_u.max() - mem_u.min()) + 1e-6

    @given(workloads(), st.floats(0.01, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_mean_rate_never_worse(self, w, p_target):
        rates = balanced_rates(w, p_target=p_target)
        assert rates.mean() >= p_target - 1e-12
