"""Distributed GAT trainer (Table 10's subject)."""

import numpy as np
import pytest

from repro.core import DistributedGATTrainer
from repro.dist import RTX2080TI_CLUSTER
from repro.nn import GATModel
from repro.partition import partition_graph


def make_model(graph, seed=0, heads=2):
    return GATModel(
        graph.feature_dim, 8, graph.num_classes, 2, 0.1,
        np.random.default_rng(seed), num_heads=heads,
    )


@pytest.fixture(scope="module")
def gat_setup(small_graph):
    part = partition_graph(small_graph, 3, method="metis", seed=0)
    return small_graph, part


class TestConstruction:
    def test_invalid_p(self, gat_setup):
        g, part = gat_setup
        with pytest.raises(ValueError):
            DistributedGATTrainer(g, part, make_model(g), p=2.0)

    def test_edge_lists_include_self_loops(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(g, part, make_model(g), p=1.0)
        for i, edges in enumerate(trainer._edges):
            n_in = trainer.runtime.ranks[i].n_inner
            # Each inner node has a self loop among the inner edges.
            pairs = set(zip(edges.src_inner.tolist(), edges.dst_inner.tolist()))
            assert all((v, v) in pairs for v in range(n_in))


class TestTraining:
    def test_loss_finite_and_decreases(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(g, part, make_model(g), p=0.5, lr=0.01)
        history = trainer.train(15)
        assert np.isfinite(history.loss[-1])
        assert history.loss[-1] < history.loss[0]

    def test_comm_scales_with_p(self, gat_setup):
        g, part = gat_setup
        t_full = DistributedGATTrainer(g, part, make_model(g), p=1.0)
        t_full.train_epoch()
        t_low = DistributedGATTrainer(g, part, make_model(g, seed=1), p=0.1, seed=0)
        t_low.train_epoch()
        full_fwd = t_full.comm.total_bytes("forward")
        low_fwd = t_low.comm.total_bytes("forward")
        assert low_fwd < 0.35 * full_fwd

    def test_p_zero_no_boundary_traffic(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(g, part, make_model(g), p=0.0)
        trainer.train_epoch()
        assert trainer.comm.total_bytes("forward") == 0

    def test_modeled_breakdown_recorded(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(
            g, part, make_model(g), p=0.5, cluster=RTX2080TI_CLUSTER
        )
        trainer.train(3)
        assert len(trainer.history.modeled) == 3
        assert trainer.history.modeled[0].total > 0

    def test_speedup_ordering_in_model(self, gat_setup):
        """Table 10's shape: modelled epoch time decreases as p drops."""
        g, part = gat_setup
        totals = {}
        for p in (1.0, 0.1, 0.0):
            trainer = DistributedGATTrainer(
                g, part, make_model(g), p=p, cluster=RTX2080TI_CLUSTER, seed=0
            )
            trainer.train(2)
            totals[p] = np.mean([b.total for b in trainer.history.modeled])
        assert totals[0.0] <= totals[0.1] <= totals[1.0]

    def test_evaluate_full_graph(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(g, part, make_model(g), p=0.5)
        scores = trainer.evaluate()
        assert set(scores) == {"train", "val", "test"}
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_learns(self, gat_setup):
        g, part = gat_setup
        trainer = DistributedGATTrainer(g, part, make_model(g), p=0.5, lr=0.01)
        history = trainer.train(40, eval_every=40)
        assert history.test_metric[-1] > 2.0 / g.num_classes
