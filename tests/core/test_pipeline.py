"""PipelinedTrainer: staleness-1 boundary features + BNS composition.

Key invariants:
* the warm-up epoch (no caches yet) is numerically identical to the
  synchronous trainer's first epoch;
* the metered traffic is identical to the synchronous trainer's — the
  pipeline changes *when* bytes move, never how many;
* the modelled epoch time overlaps communication with compute;
* training still converges, within a few points of synchronous, and
  composes with BoundaryNodeSampler.
"""

import numpy as np
import pytest

from repro.core import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
    PipelinedTrainer,
)
from repro.dist import RTX2080TI_CLUSTER
from repro.nn import GraphSAGEModel
from repro.partition import partition_graph


def paired_models(graph, dropout=0.0, layers=2, hidden=16, seed=42):
    a = GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed),
    )
    b = GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed + 1),
    )
    b.load_state_dict(a.state_dict())
    return a, b


class TestWarmup:
    def test_first_epoch_matches_synchronous(self, small_graph, small_partition):
        m_sync, m_pipe = paired_models(small_graph)
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, FullBoundarySampler(), lr=0.01
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, FullBoundarySampler(), lr=0.01
        )
        assert abs(t_sync.train_epoch() - t_pipe.train_epoch()) < 1e-9

    def test_is_warm_transitions(self, small_graph, small_partition):
        _, model = paired_models(small_graph)
        t = PipelinedTrainer(
            small_graph, small_partition, model, FullBoundarySampler(), lr=0.01
        )
        assert not t.is_warm
        t.train_epoch()
        assert t.is_warm

    def test_reset_pipeline_clears_caches(self, small_graph, small_partition):
        _, model = paired_models(small_graph)
        t = PipelinedTrainer(
            small_graph, small_partition, model, FullBoundarySampler(), lr=0.01
        )
        t.train_epoch()
        t.reset_pipeline()
        assert not t.is_warm

    def test_second_epoch_differs_from_synchronous(self, small_graph, small_partition):
        # Staleness must actually bite from epoch 2 onward (otherwise
        # the pipeline silently fell back to fresh features).
        m_sync, m_pipe = paired_models(small_graph)
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, FullBoundarySampler(), lr=0.01
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, FullBoundarySampler(), lr=0.01
        )
        t_sync.train_epoch()
        t_pipe.train_epoch()
        l_sync = t_sync.train_epoch()
        l_pipe = t_pipe.train_epoch()
        assert l_sync != l_pipe


class TestTrafficInvariance:
    @pytest.mark.parametrize("p", [1.0, 0.5, 0.1])
    def test_bytes_match_synchronous(self, small_graph, small_partition, p):
        sampler = FullBoundarySampler() if p == 1.0 else BoundaryNodeSampler(p)
        m_sync, m_pipe = paired_models(small_graph)
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, sampler, lr=0.01, seed=9
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, sampler, lr=0.01, seed=9
        )
        for _ in range(3):
            t_sync.train_epoch()
            t_pipe.train_epoch()
        assert t_sync.history.comm_bytes == t_pipe.history.comm_bytes

    def test_pairwise_traffic_symmetric_roles(self, small_graph, small_partition):
        _, model = paired_models(small_graph)
        t = PipelinedTrainer(
            small_graph, small_partition, model, FullBoundarySampler(), lr=0.01
        )
        t.train_epoch()
        # forward bytes from i->j equal backward bytes j->i by design
        assert t.comm.total_bytes("forward") == t.comm.total_bytes("backward")


class TestModeledOverlap:
    def test_breakdown_flags_overlap(self, small_graph, small_partition):
        _, model = paired_models(small_graph)
        t = PipelinedTrainer(
            small_graph, small_partition, model, FullBoundarySampler(),
            lr=0.01, cluster=RTX2080TI_CLUSTER,
        )
        t.train_epoch()
        b = t.history.modeled[-1]
        assert b.overlap_communication
        assert b.total <= b.compute + b.communication + b.reduce + 1e-12
        assert b.total >= max(b.compute, b.communication)

    def test_pipelined_epoch_never_slower_than_synchronous_model(
        self, small_graph, small_partition
    ):
        m_sync, m_pipe = paired_models(small_graph)
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, FullBoundarySampler(),
            lr=0.01, cluster=RTX2080TI_CLUSTER,
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, FullBoundarySampler(),
            lr=0.01, cluster=RTX2080TI_CLUSTER,
        )
        t_sync.train_epoch()
        t_pipe.train_epoch()
        assert t_pipe.history.modeled[-1].total <= t_sync.history.modeled[-1].total + 1e-12


class TestConvergence:
    def test_converges_close_to_synchronous(self, small_graph):
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        m_sync, m_pipe = paired_models(small_graph, layers=2, hidden=24)
        t_sync = DistributedTrainer(small_graph, part, m_sync, lr=0.01)
        t_pipe = PipelinedTrainer(small_graph, part, m_pipe, lr=0.01)
        t_sync.train(60)
        t_pipe.train(60)
        acc_sync = t_sync.evaluate()["test"]
        acc_pipe = t_pipe.evaluate()["test"]
        assert acc_pipe > acc_sync - 0.08

    def test_composes_with_bns(self, small_graph):
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        _, model = paired_models(small_graph, layers=2, hidden=24)
        t = PipelinedTrainer(
            small_graph, part, model, BoundaryNodeSampler(0.3), lr=0.01, seed=1
        )
        t.train(60)
        assert t.evaluate()["test"] > 0.5

    def test_loss_decreases(self, small_graph, small_partition):
        _, model = paired_models(small_graph)
        t = PipelinedTrainer(small_graph, small_partition, model, lr=0.01)
        h = t.train(30)
        assert h.loss[-1] < h.loss[0]


class TestMultilabel:
    def test_pipelined_multilabel_runs(self, multilabel_graph):
        part = partition_graph(multilabel_graph, 2, method="metis", seed=0)
        model = GraphSAGEModel(
            multilabel_graph.feature_dim, 16, multilabel_graph.num_classes,
            2, 0.0, np.random.default_rng(0),
        )
        t = PipelinedTrainer(
            multilabel_graph, part, model, BoundaryNodeSampler(0.5), lr=0.01
        )
        h = t.train(10)
        assert len(h.loss) == 10
        assert np.isfinite(h.loss).all()
