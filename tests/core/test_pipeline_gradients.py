"""Stale-gradient (ghost-loss) correctness for the pipelined trainer.

The construction: epoch t harvests dL/d(gathered stale blocks) and
epoch t+1 adds <stop_grad(g), h_current[rows]> to the loss, so the
owners receive last epoch's remote-neighbour gradients through their
current forward path.  Two exact consequences are tested:

* with (nearly) frozen weights the feature trajectory is static, so
  stale == fresh and the pipelined *parameter gradients* must match
  the synchronous trainer's bit-for-bit (up to the weight drift);
* with a single partition there are no boundary nodes, so pipelined
  training is identical to synchronous training at every epoch.
"""

import numpy as np
import pytest

from repro.core import DistributedTrainer, FullBoundarySampler, PipelinedTrainer
from repro.nn import GraphSAGEModel, SGD
from repro.partition import partition_graph


def paired(graph, seed=42):
    a = GraphSAGEModel(
        graph.feature_dim, 12, graph.num_classes, 2, 0.0,
        np.random.default_rng(seed),
    )
    b = GraphSAGEModel(
        graph.feature_dim, 12, graph.num_classes, 2, 0.0,
        np.random.default_rng(seed + 1),
    )
    b.load_state_dict(a.state_dict())
    return a, b


class TestFrozenWeightEquivalence:
    def test_gradients_match_synchronous(self, small_graph, small_partition):
        m_sync, m_pipe = paired(small_graph)
        # Near-zero step size: the parameter trajectory is effectively
        # frozen, so stale features equal fresh features.
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, FullBoundarySampler(),
            optimizer=SGD(m_sync.parameters(), lr=1e-300),
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, FullBoundarySampler(),
            optimizer=SGD(m_pipe.parameters(), lr=1e-300),
        )
        for epoch in range(3):
            t_sync.train_epoch()
            t_pipe.train_epoch()
            if epoch == 0:
                # Warm-up: remote gradients are harvested but arrive
                # one epoch later, so epoch 0 legitimately differs.
                continue
            for ps, pp in zip(m_sync.parameters(), m_pipe.parameters()):
                np.testing.assert_allclose(
                    pp.grad, ps.grad, rtol=1e-9, atol=1e-12,
                    err_msg=f"epoch {epoch}",
                )

    def test_losses_match_with_frozen_weights(self, small_graph, small_partition):
        m_sync, m_pipe = paired(small_graph)
        t_sync = DistributedTrainer(
            small_graph, small_partition, m_sync, FullBoundarySampler(),
            optimizer=SGD(m_sync.parameters(), lr=1e-300),
        )
        t_pipe = PipelinedTrainer(
            small_graph, small_partition, m_pipe, FullBoundarySampler(),
            optimizer=SGD(m_pipe.parameters(), lr=1e-300),
        )
        for _ in range(3):
            ls = t_sync.train_epoch()
            lp = t_pipe.train_epoch()
            # The ghost terms perturb the *objective*, but the recorded
            # loss is the task loss only — identical when frozen.
            assert ls == pytest.approx(lp, rel=1e-12)


class TestSinglePartition:
    def test_no_boundary_means_exact_equivalence(self, small_graph):
        part = partition_graph(small_graph, 1, method="random", seed=0)
        m_sync, m_pipe = paired(small_graph)
        t_sync = DistributedTrainer(small_graph, part, m_sync, lr=0.01)
        t_pipe = PipelinedTrainer(small_graph, part, m_pipe, lr=0.01)
        for _ in range(4):
            assert t_sync.train_epoch() == pytest.approx(
                t_pipe.train_epoch(), abs=1e-12
            )
        for ps, pp in zip(m_sync.parameters(), m_pipe.parameters()):
            np.testing.assert_allclose(pp.data, ps.data, atol=1e-12)


class TestGhostBookkeeping:
    def test_stale_grads_harvested_each_epoch(self, small_graph, small_partition):
        _, model = paired(small_graph)
        t = PipelinedTrainer(small_graph, small_partition, model, lr=0.01)
        t.train_epoch()
        assert len(t._stale_grads) > 0
        for layer_idx, owner, rows, grad in t._stale_grads:
            assert grad.shape[0] == len(rows)
            assert np.isfinite(grad).all()

    def test_reset_clears_ghosts(self, small_graph, small_partition):
        _, model = paired(small_graph)
        t = PipelinedTrainer(small_graph, small_partition, model, lr=0.01)
        t.train_epoch()
        t.reset_pipeline()
        assert t._stale_grads == []
