"""PartitionRuntime: block extraction and bookkeeping invariants."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PartitionRuntime
from repro.graph.propagation import mean_aggregation
from repro.partition import communication_volume, partition_graph


@pytest.fixture(scope="module")
def runtime(small_graph, small_partition):
    return PartitionRuntime(small_graph, small_partition)


class TestStructure:
    def test_validate(self, runtime):
        runtime.validate()

    def test_inner_sets_disjoint_cover(self, runtime, small_graph):
        covered = np.concatenate([r.inner for r in runtime.ranks])
        assert len(covered) == small_graph.num_nodes
        assert len(np.unique(covered)) == small_graph.num_nodes

    def test_boundary_sorted_by_owner(self, runtime):
        for r in runtime.ranks:
            assert (np.diff(r.bd_owner) >= 0).all()

    def test_boundary_local_index_correct(self, runtime):
        for r in runtime.ranks:
            for j, (g_id, owner) in enumerate(zip(r.boundary[:10], r.bd_owner[:10])):
                owner_inner = runtime.ranks[owner].inner
                assert owner_inner[r.bd_local_index[j]] == g_id

    def test_total_boundary_matches_eq3(self, runtime, small_graph, small_partition):
        assert runtime.total_boundary() == communication_volume(
            small_graph.adj, small_partition
        )

    def test_blocks_tile_global_operator(self, runtime, small_graph):
        """[P_in | P_bd] rows must equal the global P rows (reordered)."""
        p_global = mean_aggregation(small_graph.adj).csr
        for r in runtime.ranks[:2]:
            cols = np.concatenate([r.inner, r.boundary])
            expected = p_global[r.inner][:, cols].toarray()
            got = sp.hstack([r.p_in, r.p_bd]).toarray()
            np.testing.assert_allclose(got, expected)

    def test_adj_blocks_binary(self, runtime):
        for r in runtime.ranks:
            if r.a_in.nnz:
                assert np.all(r.a_in.data == 1.0)
            if r.a_bd.nnz:
                assert np.all(r.a_bd.data == 1.0)

    def test_label_and_mask_slices(self, runtime, small_graph):
        for r in runtime.ranks:
            np.testing.assert_array_equal(r.labels, small_graph.labels[r.inner])
            np.testing.assert_array_equal(
                r.train_local, np.flatnonzero(small_graph.train_mask[r.inner])
            )

    def test_total_train_count(self, runtime, small_graph):
        assert runtime.total_train == small_graph.train_mask.sum()


class TestBoundaryGroups:
    def test_groups_cover_kept(self, runtime):
        r = max(runtime.ranks, key=lambda r: r.n_boundary)
        kept = np.arange(0, r.n_boundary, 2)
        seen = []
        for owner, pos, rows in r.boundary_groups(kept):
            assert (r.bd_owner[pos] == owner).all()
            assert len(pos) == len(rows)
            seen.extend(pos.tolist())
        np.testing.assert_array_equal(np.sort(seen), kept)

    def test_empty_kept(self, runtime):
        r = runtime.ranks[0]
        assert list(r.boundary_groups(np.empty(0, dtype=np.int64))) == []

    def test_owners_strictly_increase_across_groups(self, runtime):
        r = max(runtime.ranks, key=lambda r: r.n_boundary)
        kept = np.arange(r.n_boundary)
        owners = [owner for owner, _, _ in r.boundary_groups(kept)]
        assert owners == sorted(set(owners))


class TestAggregationModes:
    def test_sym_mode(self, small_graph, small_partition):
        runtime = PartitionRuntime(small_graph, small_partition, aggregation="sym")
        runtime.validate()
        # sym-norm includes self loops -> p_in diagonals nonzero.
        assert (runtime.ranks[0].p_in.diagonal() > 0).all()

    def test_unknown_mode(self, small_graph, small_partition):
        with pytest.raises(ValueError):
            PartitionRuntime(small_graph, small_partition, aggregation="attention")

    def test_single_partition(self, small_graph):
        part = partition_graph(small_graph, 1, method="metis")
        runtime = PartitionRuntime(small_graph, part)
        assert runtime.ranks[0].n_boundary == 0
        assert runtime.total_boundary() == 0
