"""BNS / BES / DropEdge / importance sampler semantics (+ properties)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DropEdgeSampler,
    EpochPlan,
    FullBoundarySampler,
    ImportanceBoundarySampler,
    PartitionRuntime,
    degree_keep_probs,
    explicit_stacked_operator,
    make_sampler,
    plan_sampling_ops,
)
from repro.partition import partition_graph
from repro.tensor import SparseOp


@pytest.fixture(scope="module")
def rank_data(small_graph):
    part = partition_graph(small_graph, 3, method="metis", seed=0)
    runtime = PartitionRuntime(small_graph, part)
    # Pick the rank with the largest boundary for meaningful sampling.
    return max(runtime.ranks, key=lambda r: r.n_boundary)


def fresh_rng(seed=0):
    return np.random.default_rng(seed)


class TestFullSampler:
    def test_keeps_everything(self, rank_data):
        plan = FullBoundarySampler().plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary
        assert plan.prop.shape == (
            rank_data.n_inner,
            rank_data.n_inner + rank_data.n_boundary,
        )

    def test_cached_zero_overhead(self, rank_data):
        s = FullBoundarySampler()
        s.plan(rank_data, fresh_rng())
        plan2 = s.plan(rank_data, fresh_rng())
        assert plan2.sampling_seconds == 0.0

    def test_operator_matches_p_blocks(self, rank_data):
        plan = FullBoundarySampler().plan(rank_data, fresh_rng())
        expected = sp.hstack([rank_data.p_in, rank_data.p_bd]).toarray()
        np.testing.assert_allclose(plan.prop.toarray(), expected)


class TestBNS:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            BoundaryNodeSampler(1.5)
        with pytest.raises(ValueError):
            BoundaryNodeSampler(-0.1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            BoundaryNodeSampler(0.5, mode="magic")

    def test_p_zero_drops_all(self, rank_data):
        plan = BoundaryNodeSampler(0.0).plan(rank_data, fresh_rng())
        assert plan.kept_positions.size == 0
        assert plan.prop.shape == (rank_data.n_inner, rank_data.n_inner)

    def test_p_one_keeps_all(self, rank_data):
        plan = BoundaryNodeSampler(1.0, mode="scale").plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_binomial_kept_count(self, rank_data):
        p = 0.3
        counts = [
            len(BoundaryNodeSampler(p).plan(rank_data, fresh_rng(s)).kept_positions)
            for s in range(60)
        ]
        mean = np.mean(counts)
        expected = p * rank_data.n_boundary
        sigma = np.sqrt(rank_data.n_boundary * p * (1 - p))
        assert abs(mean - expected) < 3 * sigma / np.sqrt(60) + 1

    def test_scale_mode_rescales_by_inverse_p(self, rank_data):
        p = 0.5
        plan = BoundaryNodeSampler(p, mode="scale").plan(rank_data, fresh_rng(1))
        kept = plan.kept_positions
        got = plan.prop.toarray()[:, rank_data.n_inner:]
        expected = rank_data.p_bd.toarray()[:, kept] / p
        np.testing.assert_allclose(got, expected)

    def test_scale_mode_unbiased(self, rank_data):
        """E[P̃ @ H̃] == P @ H over many draws (the Appendix A premise)."""
        rng_feat = np.random.default_rng(9)
        h_in = rng_feat.normal(size=(rank_data.n_inner, 4))
        h_bd = rng_feat.normal(size=(rank_data.n_boundary, 4))
        exact = rank_data.p_in @ h_in + rank_data.p_bd @ h_bd
        total = np.zeros_like(exact)
        n_draws = 400
        sampler = BoundaryNodeSampler(0.3, mode="scale")
        for s in range(n_draws):
            plan = sampler.plan(rank_data, fresh_rng(s))
            h_all = np.vstack([h_in, h_bd[plan.kept_positions]])
            total += plan.prop.csr @ h_all
        mean = total / n_draws
        err = np.abs(mean - exact).max()
        scale = np.abs(exact).max()
        assert err < 0.15 * scale

    def test_renorm_mode_rows_sum_to_one(self, rank_data):
        plan = BoundaryNodeSampler(0.3, mode="renorm").plan(rank_data, fresh_rng(3))
        sums = np.asarray(plan.prop.csr.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)

    def test_renorm_p1_matches_full(self, rank_data):
        plan = BoundaryNodeSampler(1.0, mode="renorm").plan(rank_data, fresh_rng())
        full = FullBoundarySampler().plan(rank_data, fresh_rng())
        np.testing.assert_allclose(
            plan.prop.toarray(), full.prop.toarray(), atol=1e-12
        )

    def test_kept_positions_sorted(self, rank_data):
        plan = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(2))
        assert (np.diff(plan.kept_positions) > 0).all()

    def test_deterministic_given_rng(self, rank_data):
        a = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(5)).kept_positions
        b = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(5)).kept_positions
        np.testing.assert_array_equal(a, b)

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_operator_shape_matches_kept(self, p, seed):
        rd = self._rank_data
        plan = BoundaryNodeSampler(p).plan(rd, fresh_rng(seed))
        assert plan.prop.shape == (
            rd.n_inner, rd.n_inner + len(plan.kept_positions)
        )

    @pytest.fixture(autouse=True)
    def _attach(self, rank_data):
        self._rank_data = rank_data


class TestDegreeKeepProbs:
    """Water-filling invariants of the importance distribution."""

    def test_expected_kept_matches_uniform(self):
        rng = np.random.default_rng(0)
        deg = rng.pareto(1.5, size=500) + 1.0
        for p in (0.05, 0.1, 0.5, 0.9):
            pi = degree_keep_probs(deg, p, p / 4)
            assert np.isclose(pi.sum(), p * deg.size, rtol=1e-9)
            assert (pi >= p / 4 - 1e-12).all() and (pi <= 1.0 + 1e-12).all()

    def test_equal_degrees_reduce_to_uniform(self):
        pi = degree_keep_probs(np.full(64, 7.0), 0.3, 0.05)
        np.testing.assert_allclose(pi, 0.3, atol=1e-12)

    def test_monotone_in_degree(self):
        deg = np.array([1.0, 2.0, 4.0, 50.0])
        pi = degree_keep_probs(deg, 0.5, 0.1)
        assert (np.diff(pi) >= -1e-12).all()

    def test_p_one_keeps_everything(self):
        pi = degree_keep_probs(np.array([1.0, 9.0]), 1.0, 0.25)
        np.testing.assert_allclose(pi, 1.0)

    def test_zero_mass_falls_back_to_uniform(self):
        pi = degree_keep_probs(np.zeros(10), 0.2, 0.05)
        np.testing.assert_allclose(pi, 0.2)

    def test_unachievable_floor_spills_to_zero_mass_entries(self):
        """Mixed zero/positive degrees where p·n exceeds what clipping
        at [p_min, 1] can reach: massive columns saturate at 1, the
        zero-mass ones share the spill — never NaN, budget exact."""
        deg = np.array([1.0] + [0.0] * 9)
        pi = degree_keep_probs(deg, 0.5, 0.125)
        assert np.isfinite(pi).all()
        assert np.isclose(pi.sum(), 0.5 * deg.size, rtol=1e-9)
        assert pi[0] == 1.0
        np.testing.assert_allclose(pi[1:], (0.5 * 10 - 1.0) / 9)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            degree_keep_probs(np.ones(4), 0.0, 0.1)
        with pytest.raises(ValueError):
            degree_keep_probs(np.ones(4), 0.5, 0.0)

    @given(
        st.floats(min_value=0.02, max_value=0.98),
        st.integers(0, 20),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_budget_conserved(self, p, seed):
        deg = np.random.default_rng(seed).pareto(1.2, size=200) + 1.0
        pi = degree_keep_probs(deg, p, p / 4)
        assert np.isclose(pi.sum(), p * deg.size, rtol=1e-9)


class TestImportance:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ImportanceBoundarySampler(1.5)
        with pytest.raises(ValueError):
            ImportanceBoundarySampler(0.5, p_min=0.0)
        with pytest.raises(ValueError):
            ImportanceBoundarySampler(0.5, mode="magic")

    def test_p_zero_drops_all(self, rank_data):
        plan = ImportanceBoundarySampler(0.0).plan(rank_data, fresh_rng())
        assert plan.kept_positions.size == 0

    def test_p_one_keeps_all_without_weights(self, rank_data):
        plan = ImportanceBoundarySampler(1.0, mode="scale").plan(
            rank_data, fresh_rng()
        )
        assert len(plan.kept_positions) == rank_data.n_boundary
        assert plan.prop.col_scale is None  # pi = 1 degenerates cleanly

    def test_expected_kept_count_matches_uniform_bns(self, rank_data):
        """The apples-to-apples traffic contract: E[kept] = p·|B_i|."""
        p = 0.3
        counts = [
            len(
                ImportanceBoundarySampler(p)
                .plan(rank_data, fresh_rng(s)).kept_positions
            )
            for s in range(60)
        ]
        expected = p * rank_data.n_boundary
        sigma = np.sqrt(rank_data.n_boundary * p * (1 - p))
        assert abs(np.mean(counts) - expected) < 3 * sigma / np.sqrt(60) + 1

    def test_scale_mode_applies_ht_weights(self, rank_data):
        p = 0.4
        sampler = ImportanceBoundarySampler(p, mode="scale")
        plan = sampler.plan(rank_data, fresh_rng(1))
        kept = plan.kept_positions
        pi = rank_data.boundary_keep_probs(p, sampler.p_min, "scale")
        got = plan.prop.toarray()[:, rank_data.n_inner:]
        expected = rank_data.p_bd.toarray()[:, kept] / pi[kept]
        np.testing.assert_allclose(got, expected)

    def test_matches_explicit_operator(self, rank_data):
        """Split plan == legacy hstack construction, both modes."""
        p = 0.4
        for mode in ("renorm", "scale"):
            sampler = ImportanceBoundarySampler(p, mode=mode)
            plan = sampler.plan(rank_data, fresh_rng(2))
            kept = plan.kept_positions
            pi = rank_data.boundary_keep_probs(p, sampler.p_min, mode)
            rate = pi[kept] if mode == "scale" else p
            explicit = explicit_stacked_operator(rank_data, kept, mode, rate)
            h = np.random.default_rng(3).normal(size=(plan.prop.shape[1], 4))
            np.testing.assert_allclose(
                plan.prop.matmul(h), explicit @ h, atol=1e-9
            )
            g = np.random.default_rng(4).normal(size=(rank_data.n_inner, 4))
            np.testing.assert_allclose(
                plan.prop.rmatmul(g), explicit.T @ g, atol=1e-9
            )

    def test_renorm_rows_sum_to_one(self, rank_data):
        plan = ImportanceBoundarySampler(0.3, mode="renorm").plan(
            rank_data, fresh_rng(3)
        )
        sums = np.asarray(plan.prop.csr.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_scale_mode_unbiased(self, rank_data):
        """E[P̃ @ H̃] == P @ H: the Horvitz–Thompson premise."""
        rng_feat = np.random.default_rng(9)
        h_in = rng_feat.normal(size=(rank_data.n_inner, 4))
        h_bd = rng_feat.normal(size=(rank_data.n_boundary, 4))
        exact = rank_data.p_in @ h_in + rank_data.p_bd @ h_bd
        total = np.zeros_like(exact)
        n_draws = 400
        sampler = ImportanceBoundarySampler(0.3, mode="scale")
        for s in range(n_draws):
            plan = sampler.plan(rank_data, fresh_rng(s))
            h_all = np.vstack([h_in, h_bd[plan.kept_positions]])
            total += plan.prop.matmul(h_all)
        err = np.abs(total / n_draws - exact).max()
        assert err < 0.15 * np.abs(exact).max()

    def test_hubs_kept_more_often_than_tail(self, rank_data):
        """The importance mechanism: the heaviest boundary column is
        kept more often than the lightest across draws."""
        deg = rank_data.boundary_degree("renorm")
        if deg.max() <= deg.min():  # pragma: no cover - degenerate graph
            pytest.skip("no degree skew on this partition")
        hub, tail = int(np.argmax(deg)), int(np.argmin(deg))
        sampler = ImportanceBoundarySampler(0.2)
        hub_kept = tail_kept = 0
        for s in range(80):
            kept = sampler.plan(rank_data, fresh_rng(s)).kept_positions
            hub_kept += int(hub in kept)
            tail_kept += int(tail in kept)
        assert hub_kept > tail_kept

    def test_deterministic_given_rng(self, rank_data):
        a = ImportanceBoundarySampler(0.4).plan(
            rank_data, fresh_rng(5)
        ).kept_positions
        b = ImportanceBoundarySampler(0.4).plan(
            rank_data, fresh_rng(5)
        ).kept_positions
        np.testing.assert_array_equal(a, b)

    def test_planning_stays_o_boundary(self, rank_data):
        """Recorded ops mirror BNS: one draw per boundary node plus the
        kept columns' edges (pi is served from the rank cache)."""
        plan = ImportanceBoundarySampler(0.3).plan(rank_data, fresh_rng(6))
        assert plan.sampling_ops == (
            rank_data.n_boundary + plan.prop.boundary_nnz
        )

    def test_spec_ships_without_per_node_state(self):
        """The executor pickles the sampler to every worker: the spec
        must stay (p, p_min, mode) — pi is derived rank-locally."""
        import pickle

        sampler = ImportanceBoundarySampler(0.3, mode="scale")
        assert not any(
            isinstance(v, np.ndarray) for v in vars(sampler).values()
        )
        assert len(pickle.dumps(sampler)) < 256


class TestMakeSampler:
    def test_dispatch(self):
        assert isinstance(make_sampler("bns", 0.5), BoundaryNodeSampler)
        assert isinstance(
            make_sampler("importance", 0.5), ImportanceBoundarySampler
        )
        assert isinstance(make_sampler("bes", 0.5), BoundaryEdgeSampler)
        assert isinstance(make_sampler("dropedge", 0.5), DropEdgeSampler)
        assert isinstance(make_sampler("full", 0.5), FullBoundarySampler)

    def test_p_one_collapses_to_full(self):
        assert isinstance(make_sampler("bns", 1.0), FullBoundarySampler)
        assert isinstance(make_sampler("importance", 1.0), FullBoundarySampler)

    def test_mode_and_p_min_threaded(self):
        s = make_sampler("importance", 0.2, mode="scale", p_min=0.01)
        assert s.mode == "scale" and s.p_min == 0.01
        assert make_sampler("bns", 0.2, mode="scale").mode == "scale"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("magic", 0.5)


class TestSamplingOpsAccounting:
    """plan_sampling_ops: built-in plans record exact counts; custom
    samplers with materialised operators get the documented fallback."""

    def test_custom_sparseop_plan_fallback(self, rank_data):
        """A custom sampler may return a plain SparseOp: ops fall back
        to the boundary draws plus the extra (boundary) nnz."""
        kept = np.arange(0, rank_data.n_boundary, 2, dtype=np.int64)
        prop = SparseOp(explicit_stacked_operator(rank_data, kept, "scale", 0.5))
        plan = EpochPlan(
            prop=prop, kept_positions=kept, sampling_seconds=0.0,
            sampling_ops=None,
        )
        expected = rank_data.n_boundary + (prop.nnz - rank_data.p_in.nnz)
        assert plan_sampling_ops(rank_data, plan) == expected

    def test_custom_plan_smaller_than_inner_clamps_to_zero_extra(
        self, rank_data
    ):
        """An operator with no boundary columns must not go negative."""
        plan = EpochPlan(
            prop=SparseOp(rank_data.p_in),
            kept_positions=np.empty(0, dtype=np.int64),
            sampling_seconds=0.0, sampling_ops=None,
        )
        assert plan_sampling_ops(rank_data, plan) == rank_data.n_boundary

    def test_recorded_ops_pass_through(self, rank_data):
        plan = BoundaryNodeSampler(0.5).plan(rank_data, fresh_rng(0))
        assert plan_sampling_ops(rank_data, plan) == plan.sampling_ops

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_property_ops_cover_kept_boundary_work(self, p, seed):
        """Every drawing sampler touched at least the boundary columns
        it kept (their edges) — the device-scale accounting can never
        under-report the work of the plan it produced."""
        rd = self._rank_data
        for sampler in (
            BoundaryNodeSampler(p),
            ImportanceBoundarySampler(p),
            BoundaryEdgeSampler(p),
            DropEdgeSampler(p),
        ):
            plan = sampler.plan(rd, fresh_rng(seed))
            ops = plan_sampling_ops(rd, plan)
            assert ops >= plan.prop.boundary_nnz
            assert ops >= len(plan.kept_positions)

    def test_full_sampler_records_zero_ops(self, rank_data):
        """The cached p=1 plan did no sampling work at all."""
        plan = FullBoundarySampler().plan(rank_data, fresh_rng(0))
        assert plan.sampling_ops == 0
        assert plan_sampling_ops(rank_data, plan) == 0

    @pytest.fixture(autouse=True)
    def _attach(self, rank_data):
        self._rank_data = rank_data


class TestBES:
    def test_invalid_q(self):
        with pytest.raises(ValueError):
            BoundaryEdgeSampler(-0.5)

    def test_q_one_keeps_all(self, rank_data):
        plan = BoundaryEdgeSampler(1.0).plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_q_zero_drops_all(self, rank_data):
        plan = BoundaryEdgeSampler(0.0).plan(rank_data, fresh_rng())
        assert plan.kept_positions.size == 0

    def test_kept_columns_have_edges(self, rank_data):
        plan = BoundaryEdgeSampler(0.3).plan(rank_data, fresh_rng(1))
        bd_block = plan.prop.csr[:, rank_data.n_inner:]
        col_nnz = np.diff(bd_block.tocsc().indptr)
        assert (col_nnz > 0).all()

    def test_bes_keeps_more_nodes_than_bns_at_equal_edge_drop(self, rank_data):
        """Table 9's mechanism: at the same number of dropped edges,
        edge sampling still needs to communicate far more nodes."""
        q = 0.5
        bes_kept = len(
            BoundaryEdgeSampler(q).plan(rank_data, fresh_rng(3)).kept_positions
        )
        bns_kept = len(
            BoundaryNodeSampler(q).plan(rank_data, fresh_rng(3)).kept_positions
        )
        assert bes_kept > bns_kept


class TestDropEdge:
    def test_invalid_q(self):
        with pytest.raises(ValueError):
            DropEdgeSampler(1.01)

    def test_q_one_keeps_all(self, rank_data):
        plan = DropEdgeSampler(1.0).plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_drops_inner_edges_too(self, rank_data):
        plan = DropEdgeSampler(0.3).plan(rank_data, fresh_rng(1))
        inner_block = plan.prop.csr[:, : rank_data.n_inner]
        assert inner_block.nnz < rank_data.a_in.nnz

    def test_renorm_rows_convex(self, rank_data):
        plan = DropEdgeSampler(0.5, mode="renorm").plan(rank_data, fresh_rng(2))
        sums = np.asarray(plan.prop.csr.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)
