"""BNS / BES / DropEdge sampler semantics (+ hypothesis properties)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DropEdgeSampler,
    FullBoundarySampler,
    PartitionRuntime,
)
from repro.partition import partition_graph


@pytest.fixture(scope="module")
def rank_data(small_graph):
    part = partition_graph(small_graph, 3, method="metis", seed=0)
    runtime = PartitionRuntime(small_graph, part)
    # Pick the rank with the largest boundary for meaningful sampling.
    return max(runtime.ranks, key=lambda r: r.n_boundary)


def fresh_rng(seed=0):
    return np.random.default_rng(seed)


class TestFullSampler:
    def test_keeps_everything(self, rank_data):
        plan = FullBoundarySampler().plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary
        assert plan.prop.shape == (
            rank_data.n_inner,
            rank_data.n_inner + rank_data.n_boundary,
        )

    def test_cached_zero_overhead(self, rank_data):
        s = FullBoundarySampler()
        s.plan(rank_data, fresh_rng())
        plan2 = s.plan(rank_data, fresh_rng())
        assert plan2.sampling_seconds == 0.0

    def test_operator_matches_p_blocks(self, rank_data):
        plan = FullBoundarySampler().plan(rank_data, fresh_rng())
        expected = sp.hstack([rank_data.p_in, rank_data.p_bd]).toarray()
        np.testing.assert_allclose(plan.prop.toarray(), expected)


class TestBNS:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            BoundaryNodeSampler(1.5)
        with pytest.raises(ValueError):
            BoundaryNodeSampler(-0.1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            BoundaryNodeSampler(0.5, mode="magic")

    def test_p_zero_drops_all(self, rank_data):
        plan = BoundaryNodeSampler(0.0).plan(rank_data, fresh_rng())
        assert plan.kept_positions.size == 0
        assert plan.prop.shape == (rank_data.n_inner, rank_data.n_inner)

    def test_p_one_keeps_all(self, rank_data):
        plan = BoundaryNodeSampler(1.0, mode="scale").plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_binomial_kept_count(self, rank_data):
        p = 0.3
        counts = [
            len(BoundaryNodeSampler(p).plan(rank_data, fresh_rng(s)).kept_positions)
            for s in range(60)
        ]
        mean = np.mean(counts)
        expected = p * rank_data.n_boundary
        sigma = np.sqrt(rank_data.n_boundary * p * (1 - p))
        assert abs(mean - expected) < 3 * sigma / np.sqrt(60) + 1

    def test_scale_mode_rescales_by_inverse_p(self, rank_data):
        p = 0.5
        plan = BoundaryNodeSampler(p, mode="scale").plan(rank_data, fresh_rng(1))
        kept = plan.kept_positions
        got = plan.prop.toarray()[:, rank_data.n_inner:]
        expected = rank_data.p_bd.toarray()[:, kept] / p
        np.testing.assert_allclose(got, expected)

    def test_scale_mode_unbiased(self, rank_data):
        """E[P̃ @ H̃] == P @ H over many draws (the Appendix A premise)."""
        rng_feat = np.random.default_rng(9)
        h_in = rng_feat.normal(size=(rank_data.n_inner, 4))
        h_bd = rng_feat.normal(size=(rank_data.n_boundary, 4))
        exact = rank_data.p_in @ h_in + rank_data.p_bd @ h_bd
        total = np.zeros_like(exact)
        n_draws = 400
        sampler = BoundaryNodeSampler(0.3, mode="scale")
        for s in range(n_draws):
            plan = sampler.plan(rank_data, fresh_rng(s))
            h_all = np.vstack([h_in, h_bd[plan.kept_positions]])
            total += plan.prop.csr @ h_all
        mean = total / n_draws
        err = np.abs(mean - exact).max()
        scale = np.abs(exact).max()
        assert err < 0.15 * scale

    def test_renorm_mode_rows_sum_to_one(self, rank_data):
        plan = BoundaryNodeSampler(0.3, mode="renorm").plan(rank_data, fresh_rng(3))
        sums = np.asarray(plan.prop.csr.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)

    def test_renorm_p1_matches_full(self, rank_data):
        plan = BoundaryNodeSampler(1.0, mode="renorm").plan(rank_data, fresh_rng())
        full = FullBoundarySampler().plan(rank_data, fresh_rng())
        np.testing.assert_allclose(
            plan.prop.toarray(), full.prop.toarray(), atol=1e-12
        )

    def test_kept_positions_sorted(self, rank_data):
        plan = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(2))
        assert (np.diff(plan.kept_positions) > 0).all()

    def test_deterministic_given_rng(self, rank_data):
        a = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(5)).kept_positions
        b = BoundaryNodeSampler(0.4).plan(rank_data, fresh_rng(5)).kept_positions
        np.testing.assert_array_equal(a, b)

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_operator_shape_matches_kept(self, p, seed):
        rd = self._rank_data
        plan = BoundaryNodeSampler(p).plan(rd, fresh_rng(seed))
        assert plan.prop.shape == (
            rd.n_inner, rd.n_inner + len(plan.kept_positions)
        )

    @pytest.fixture(autouse=True)
    def _attach(self, rank_data):
        self._rank_data = rank_data


class TestBES:
    def test_invalid_q(self):
        with pytest.raises(ValueError):
            BoundaryEdgeSampler(-0.5)

    def test_q_one_keeps_all(self, rank_data):
        plan = BoundaryEdgeSampler(1.0).plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_q_zero_drops_all(self, rank_data):
        plan = BoundaryEdgeSampler(0.0).plan(rank_data, fresh_rng())
        assert plan.kept_positions.size == 0

    def test_kept_columns_have_edges(self, rank_data):
        plan = BoundaryEdgeSampler(0.3).plan(rank_data, fresh_rng(1))
        bd_block = plan.prop.csr[:, rank_data.n_inner:]
        col_nnz = np.diff(bd_block.tocsc().indptr)
        assert (col_nnz > 0).all()

    def test_bes_keeps_more_nodes_than_bns_at_equal_edge_drop(self, rank_data):
        """Table 9's mechanism: at the same number of dropped edges,
        edge sampling still needs to communicate far more nodes."""
        q = 0.5
        bes_kept = len(
            BoundaryEdgeSampler(q).plan(rank_data, fresh_rng(3)).kept_positions
        )
        bns_kept = len(
            BoundaryNodeSampler(q).plan(rank_data, fresh_rng(3)).kept_positions
        )
        assert bes_kept > bns_kept


class TestDropEdge:
    def test_invalid_q(self):
        with pytest.raises(ValueError):
            DropEdgeSampler(1.01)

    def test_q_one_keeps_all(self, rank_data):
        plan = DropEdgeSampler(1.0).plan(rank_data, fresh_rng())
        assert len(plan.kept_positions) == rank_data.n_boundary

    def test_drops_inner_edges_too(self, rank_data):
        plan = DropEdgeSampler(0.3).plan(rank_data, fresh_rng(1))
        inner_block = plan.prop.csr[:, : rank_data.n_inner]
        assert inner_block.nnz < rank_data.a_in.nnz

    def test_renorm_rows_convex(self, rank_data):
        plan = DropEdgeSampler(0.5, mode="renorm").plan(rank_data, fresh_rng(2))
        sums = np.asarray(plan.prop.csr.sum(axis=1)).ravel()
        nonzero = sums[sums > 0]
        np.testing.assert_allclose(nonzero, 1.0)
