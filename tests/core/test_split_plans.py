"""Numerical equivalence of split-operator epoch plans vs the legacy
explicit hstack + row_normalise construction, for every sampler × mode,
plus the degenerate-plan caching contract."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DropEdgeSampler,
    FullBoundarySampler,
    ImportanceBoundarySampler,
    PartitionRuntime,
    explicit_stacked_operator,
)
from repro.graph.generators import SyntheticSpec, generate_graph
from repro.graph.propagation import row_normalise
from repro.partition import partition_graph
from repro.tensor import SplitOperator, get_default_dtype

# Dtype-appropriate tolerance: under REPRO_DTYPE=float32 (the CI fp32
# job) both the split and the explicit reference operators are built in
# fp32, so agreement is pinned at fp32 resolution instead of 1e-9.
ATOL = 1e-9 if get_default_dtype() == np.float64 else 2e-4


def runtime_for(seed, n=220, parts=3, method="metis"):
    spec = SyntheticSpec(
        n=n, num_communities=5, avg_degree=9.0, homophily=0.7,
        feature_dim=8, name=f"split-eq-{seed}",
    )
    graph = generate_graph(spec, seed=seed)
    part = partition_graph(graph, parts, method=method, seed=seed)
    return PartitionRuntime(graph, part)


@pytest.fixture(scope="module")
def runtimes():
    return {
        (0, "metis"): runtime_for(0, method="metis"),
        (1, "random"): runtime_for(1, method="random"),
    }


def features_for(rank_data, kept, d=5, seed=99):
    rng = np.random.default_rng(seed)
    h_in = rng.normal(size=(rank_data.n_inner, d))
    h_bd = rng.normal(size=(len(kept), d))
    return np.vstack([h_in, h_bd]) if len(kept) else h_in


class TestBNSEquivalence:
    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    @pytest.mark.parametrize("key", [(0, "metis"), (1, "random")])
    @pytest.mark.parametrize("p", [0.1, 0.35, 0.8, 1.0])
    def test_spmm_matches_explicit(self, runtimes, key, mode, p):
        for rank_data in runtimes[key].ranks:
            plan = BoundaryNodeSampler(p, mode=mode).plan(
                rank_data, np.random.default_rng(7)
            )
            explicit = explicit_stacked_operator(
                rank_data, plan.kept_positions, mode, rate=p
            )
            h = features_for(rank_data, plan.kept_positions)
            np.testing.assert_allclose(
                plan.prop.matmul(h), explicit @ h, atol=ATOL
            )

    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    def test_backward_matches_explicit(self, runtimes, mode):
        rank_data = max(runtimes[(0, "metis")].ranks, key=lambda r: r.n_boundary)
        plan = BoundaryNodeSampler(0.4, mode=mode).plan(
            rank_data, np.random.default_rng(3)
        )
        explicit = explicit_stacked_operator(
            rank_data, plan.kept_positions, mode, rate=0.4
        )
        g = np.random.default_rng(5).normal(size=(rank_data.n_inner, 4))
        np.testing.assert_allclose(
            plan.prop.rmatmul(g), explicit.T @ g, atol=ATOL
        )

    @given(st.floats(0.05, 0.95), st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_property_random_draws(self, p, seed):
        rank_data = self._rank
        for mode in ("renorm", "scale"):
            plan = BoundaryNodeSampler(p, mode=mode).plan(
                rank_data, np.random.default_rng(seed)
            )
            explicit = explicit_stacked_operator(
                rank_data, plan.kept_positions, mode, rate=p
            )
            h = features_for(rank_data, plan.kept_positions, seed=seed)
            np.testing.assert_allclose(
                plan.prop.matmul(h), explicit @ h, atol=ATOL
            )

    @pytest.fixture(autouse=True)
    def _attach(self, runtimes):
        self._rank = max(
            runtimes[(0, "metis")].ranks, key=lambda r: r.n_boundary
        )


class TestEdgeSamplerEquivalence:
    """BES/DropEdge draw fresh boundary blocks; the reference is the
    legacy construction applied to the same sampled blocks."""

    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    @pytest.mark.parametrize("q", [0.2, 0.6, 1.0])
    def test_bes_matches_stacked(self, runtimes, mode, q):
        for rank_data in runtimes[(0, "metis")].ranks:
            plan = BoundaryEdgeSampler(q, mode=mode).plan(
                rank_data, np.random.default_rng(11)
            )
            op = plan.prop
            blocks = [op.inner] + ([op.boundary] if op.boundary is not None else [])
            stacked = sp.hstack(blocks, format="csr") if len(blocks) > 1 else blocks[0]
            if mode == "renorm":
                reference = row_normalise(stacked)
            else:
                reference = stacked  # data already carries the 1/q rescale
            h = features_for(rank_data, plan.kept_positions, seed=13)
            np.testing.assert_allclose(op.matmul(h), reference @ h, atol=ATOL)

    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    def test_dropedge_matches_stacked(self, runtimes, mode):
        for rank_data in runtimes[(1, "random")].ranks:
            plan = DropEdgeSampler(0.5, mode=mode).plan(
                rank_data, np.random.default_rng(17)
            )
            op = plan.prop
            blocks = [op.inner] + ([op.boundary] if op.boundary is not None else [])
            stacked = sp.hstack(blocks, format="csr") if len(blocks) > 1 else blocks[0]
            reference = row_normalise(stacked) if mode == "renorm" else stacked
            h = features_for(rank_data, plan.kept_positions, seed=19)
            np.testing.assert_allclose(op.matmul(h), reference @ h, atol=ATOL)


class TestDegenerateAndEmpty:
    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    def test_p_zero_plan_is_cached_and_free(self, runtimes, mode):
        rank_data = runtimes[(0, "metis")].ranks[0]
        sampler = BoundaryNodeSampler(0.0, mode=mode)
        a = sampler.plan(rank_data, np.random.default_rng(0))
        b = sampler.plan(rank_data, np.random.default_rng(1))
        assert a.prop is b.prop  # shared rank-level cache, no rebuild
        assert a.sampling_seconds == 0.0 and b.sampling_seconds == 0.0
        explicit = explicit_stacked_operator(
            rank_data, np.empty(0, dtype=np.int64), mode
        )
        np.testing.assert_allclose(a.prop.toarray(), explicit.toarray(), atol=ATOL)

    def test_full_plan_shared_across_sampler_instances(self, runtimes):
        rank_data = runtimes[(0, "metis")].ranks[0]
        p1 = FullBoundarySampler().plan(rank_data, np.random.default_rng(0))
        p2 = FullBoundarySampler().plan(rank_data, np.random.default_rng(1))
        assert p1.prop is p2.prop is rank_data.full_operator()
        assert p1.sampling_seconds == 0.0

    def test_empty_boundary_universe(self):
        spec = SyntheticSpec(
            n=80, num_communities=3, avg_degree=6.0, feature_dim=4,
            name="single-part",
        )
        graph = generate_graph(spec, seed=4)
        part = partition_graph(graph, 1, method="metis")
        rank_data = PartitionRuntime(graph, part).ranks[0]
        assert rank_data.n_boundary == 0
        for mode in ("renorm", "scale"):
            for sampler in (
                BoundaryNodeSampler(0.5, mode=mode),
                BoundaryEdgeSampler(0.5, mode=mode),
                FullBoundarySampler(),
            ):
                plan = sampler.plan(rank_data, np.random.default_rng(0))
                assert plan.prop.shape == (rank_data.n_inner, rank_data.n_inner)
                assert plan.kept_positions.size == 0

    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    def test_p_one_matches_explicit(self, runtimes, mode):
        rank_data = max(runtimes[(0, "metis")].ranks, key=lambda r: r.n_boundary)
        plan = BoundaryNodeSampler(1.0, mode=mode).plan(
            rank_data, np.random.default_rng(0)
        )
        assert len(plan.kept_positions) == rank_data.n_boundary
        explicit = explicit_stacked_operator(
            rank_data, plan.kept_positions, mode, rate=1.0
        )
        np.testing.assert_allclose(
            plan.prop.toarray(), explicit.toarray(), atol=ATOL
        )

    def test_empty_draw_reports_wall_cost(self, runtimes):
        """A p > 0 draw that keeps nothing did real work: the plan is
        the cached empty operator but the wall time is recorded."""
        rank_data = runtimes[(0, "metis")].ranks[0]
        sampler = BoundaryNodeSampler(1e-9, mode="renorm")
        plan = sampler.plan(rank_data, np.random.default_rng(0))
        assert plan.kept_positions.size == 0
        assert plan.prop is rank_data.empty_operator("renorm")
        assert plan.sampling_seconds > 0.0

    def test_split_operator_type_everywhere(self, runtimes):
        for rank_data in runtimes[(0, "metis")].ranks:
            for sampler in (
                FullBoundarySampler(),
                BoundaryNodeSampler(0.3),
                ImportanceBoundarySampler(0.3),
                BoundaryEdgeSampler(0.3),
                DropEdgeSampler(0.3),
            ):
                plan = sampler.plan(rank_data, np.random.default_rng(2))
                assert isinstance(plan.prop, SplitOperator)


class TestImportanceEquivalence:
    """Importance plans vs the legacy explicit construction, both
    modes, on the boundary-heavy random partition."""

    @pytest.mark.parametrize("mode", ["renorm", "scale"])
    @pytest.mark.parametrize("p", [0.1, 0.4, 0.9])
    def test_spmm_matches_explicit(self, runtimes, mode, p):
        for rank_data in runtimes[(1, "random")].ranks:
            sampler = ImportanceBoundarySampler(p, mode=mode)
            plan = sampler.plan(rank_data, np.random.default_rng(13))
            pi = rank_data.boundary_keep_probs(p, sampler.p_min, mode)
            rate = pi[plan.kept_positions] if mode == "scale" else p
            explicit = explicit_stacked_operator(
                rank_data, plan.kept_positions, mode, rate=rate
            )
            h = features_for(rank_data, plan.kept_positions, seed=17)
            np.testing.assert_allclose(
                plan.prop.matmul(h), explicit @ h, atol=ATOL
            )
            g = np.random.default_rng(19).normal(
                size=(rank_data.n_inner, 3)
            )
            np.testing.assert_allclose(
                plan.prop.rmatmul(g), explicit.T @ g, atol=ATOL
            )
