"""Trainer loop features: early stopping and scheduler integration."""

import numpy as np
import pytest

from repro.core import DistributedTrainer, FullBoundarySampler
from repro.nn import CosineAnnealingLR, GraphSAGEModel, ReduceLROnPlateau, StepLR


def make_trainer(graph, partition, lr=0.01, seed=0):
    model = GraphSAGEModel(
        graph.feature_dim, 16, graph.num_classes, 2, 0.0,
        np.random.default_rng(seed),
    )
    return DistributedTrainer(
        graph, partition, model, FullBoundarySampler(), lr=lr, seed=seed
    )


class TestEarlyStopping:
    def test_requires_eval_every(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition)
        with pytest.raises(ValueError):
            t.train(10, patience=2)

    def test_stops_before_budget_when_stalled(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.0001)
        # Tiny lr: val metric barely moves, patience=1 fires quickly.
        h = t.train(200, eval_every=2, patience=1)
        assert len(h.loss) < 200

    def test_runs_full_budget_without_patience(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition)
        h = t.train(12, eval_every=4)
        assert len(h.loss) == 12

    def test_history_consistent_after_stop(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.0001)
        h = t.train(100, eval_every=2, patience=1)
        assert len(h.val_metric) == len(h.test_metric) == len(h.eval_epochs)
        assert h.eval_epochs[-1] == len(h.loss) - 1


class TestSchedulerIntegration:
    def test_step_lr_decays_during_training(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.01)
        sched = StepLR(t.optimizer, step_size=5, gamma=0.1)
        t.train(10, scheduler=sched)
        assert t.optimizer.lr == pytest.approx(0.001)

    def test_cosine_reaches_floor(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.01)
        sched = CosineAnnealingLR(t.optimizer, t_max=20, eta_min=1e-4)
        t.train(20, scheduler=sched)
        assert t.optimizer.lr < 0.001

    def test_plateau_steps_on_evaluations_only(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.01)
        sched = ReduceLROnPlateau(t.optimizer, factor=0.5, patience=1000)
        t.train(9, eval_every=3, scheduler=sched)
        # 3 evaluations -> 3 plateau steps, no decay at huge patience.
        assert sched.last_epoch == 2
        assert t.optimizer.lr == pytest.approx(0.01)

    def test_scheduled_training_still_learns(self, small_graph, small_partition):
        t = make_trainer(small_graph, small_partition, lr=0.01)
        sched = CosineAnnealingLR(t.optimizer, t_max=40)
        h = t.train(40, eval_every=10)
        assert h.loss[-1] < h.loss[0]
