"""DistributedTrainer: the Algorithm 1 loop and its invariants.

The heart of the suite: with p=1 and no dropout, the partition-parallel
trainer must be numerically identical to single-device full-graph
training, and the metered communication must equal Eq. 3 exactly.
"""

import numpy as np
import pytest

from repro.baselines import FullGraphTrainer
from repro.core import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
)
from repro.dist import RTX2080TI_CLUSTER
from repro.nn import GCNModel, GraphSAGEModel
from repro.partition import communication_volume, partition_graph


def make_models(graph, dropout=0.0, layers=2, hidden=16, seed=42):
    """Two models with identical initial weights."""
    a = GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed),
    )
    b = GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed + 1),
    )
    b.load_state_dict(a.state_dict())
    return a, b


class TestFullGraphEquivalence:
    """p = 1, dropout = 0  =>  bitwise-equal to single-device training."""

    @pytest.mark.parametrize("num_parts", [2, 3, 5])
    def test_losses_match(self, small_graph, num_parts):
        part = partition_graph(small_graph, num_parts, method="metis", seed=0)
        m_full, m_dist = make_models(small_graph)
        t_full = FullGraphTrainer(small_graph, m_full, lr=0.01)
        t_dist = DistributedTrainer(
            small_graph, part, m_dist, FullBoundarySampler(), lr=0.01
        )
        for _ in range(3):
            lf = t_full.train_epoch()
            ld = t_dist.train_epoch()
            assert abs(lf - ld) < 1e-9

    def test_weights_match_after_training(self, small_graph, small_partition):
        m_full, m_dist = make_models(small_graph)
        t_full = FullGraphTrainer(small_graph, m_full, lr=0.01)
        t_dist = DistributedTrainer(
            small_graph, small_partition, m_dist, FullBoundarySampler(), lr=0.01
        )
        for _ in range(3):
            t_full.train_epoch()
            t_dist.train_epoch()
        for (_, pa), (_, pb) in zip(
            m_full.named_parameters(), m_dist.named_parameters()
        ):
            np.testing.assert_allclose(pa.data, pb.data, atol=1e-9)

    def test_evaluations_match(self, small_graph, small_partition):
        m_full, m_dist = make_models(small_graph)
        t_full = FullGraphTrainer(small_graph, m_full)
        t_dist = DistributedTrainer(
            small_graph, small_partition, m_dist, FullBoundarySampler()
        )
        sf = t_full.evaluate()
        sd = t_dist.evaluate()
        for key in ("train", "val", "test"):
            assert sf[key] == pytest.approx(sd[key])

    def test_random_partition_also_equivalent(self, small_graph):
        part = partition_graph(small_graph, 4, method="random", seed=1)
        m_full, m_dist = make_models(small_graph)
        t_full = FullGraphTrainer(small_graph, m_full)
        t_dist = DistributedTrainer(small_graph, part, m_dist, FullBoundarySampler())
        assert abs(t_full.train_epoch() - t_dist.train_epoch()) < 1e-9


class TestCommunicationMetering:
    def test_forward_bytes_equal_eq3(self, small_graph, small_partition):
        """Metered forward traffic == Σ_i |B_i| · Σ_ℓ d_ℓ · scalar bytes.

        The scalar width is the run's actual dtype (8 B for the fp64
        default) — the ledger prices what the wire would ship.
        """
        _, model = make_models(small_graph, layers=2, hidden=16)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, FullBoundarySampler()
        )
        trainer.train_epoch()
        assert trainer.comm.bytes_per_scalar == np.dtype(trainer.dtype).itemsize
        volume = communication_volume(small_graph.adj, small_partition)
        width_sum = sum(model.dims[:-1])  # layer input widths
        expected = volume * width_sum * trainer.comm.bytes_per_scalar
        assert trainer.comm.total_bytes("forward") == expected

    def test_backward_mirrors_forward(self, small_graph, small_partition):
        _, model = make_models(small_graph)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, FullBoundarySampler()
        )
        trainer.train_epoch()
        assert trainer.comm.total_bytes("backward") == trainer.comm.total_bytes(
            "forward"
        )

    def test_bns_scales_traffic(self, small_graph, small_partition):
        _, m1 = make_models(small_graph)
        t1 = DistributedTrainer(small_graph, small_partition, m1, FullBoundarySampler())
        t1.train_epoch()
        _, m2 = make_models(small_graph)
        t2 = DistributedTrainer(
            small_graph, small_partition, m2, BoundaryNodeSampler(0.1), seed=0
        )
        t2.train_epoch()
        ratio = t2.comm.total_bytes("forward") / t1.comm.total_bytes("forward")
        assert 0.02 < ratio < 0.35  # ~0.1 with binomial noise

    def test_p_zero_only_reduce_traffic(self, small_graph, small_partition):
        _, model = make_models(small_graph)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.0)
        )
        trainer.train_epoch()
        assert trainer.comm.total_bytes("forward") == 0
        assert trainer.comm.total_bytes("backward") == 0
        assert trainer.comm.total_bytes("reduce") > 0

    def test_sample_sync_metered(self, small_graph, small_partition):
        _, model = make_models(small_graph)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.5)
        )
        trainer.train_epoch()
        assert trainer.comm.total_bytes("sample_sync") > 0


class TestTrainingBehaviour:
    def test_loss_decreases(self, small_graph, small_partition):
        _, model = make_models(small_graph, dropout=0.2, hidden=32)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.5), lr=0.01
        )
        history = trainer.train(30)
        assert history.loss[-1] < history.loss[0]

    def test_learns_better_than_chance(self, small_graph, small_partition):
        _, model = make_models(small_graph, dropout=0.2, hidden=32)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.5), lr=0.01
        )
        history = trainer.train(60, eval_every=30)
        chance = 1.0 / small_graph.num_classes
        assert history.test_metric[-1] > 3 * chance

    def test_multilabel_loss_and_metric(self, multilabel_graph):
        part = partition_graph(multilabel_graph, 3, method="metis", seed=0)
        model = GraphSAGEModel(
            multilabel_graph.feature_dim, 16, multilabel_graph.num_classes,
            2, 0.1, np.random.default_rng(0),
        )
        trainer = DistributedTrainer(
            multilabel_graph, part, model, BoundaryNodeSampler(0.5)
        )
        history = trainer.train(10, eval_every=10)
        assert np.isfinite(history.loss[-1])
        assert 0.0 <= history.test_metric[-1] <= 1.0

    def test_history_records_everything(self, small_graph, small_partition):
        _, model = make_models(small_graph)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.3),
            cluster=RTX2080TI_CLUSTER,
        )
        history = trainer.train(5, eval_every=2)
        assert len(history.loss) == 5
        assert len(history.comm_bytes) == 5
        assert len(history.modeled) == 5
        assert len(history.wall_seconds) == 5
        assert len(history.val_metric) == len(history.eval_epochs)
        assert all(b.total > 0 for b in history.modeled)

    def test_test_at_best_val(self, small_graph, small_partition):
        _, model = make_models(small_graph, dropout=0.2)
        trainer = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.5)
        )
        history = trainer.train(20, eval_every=5)
        idx = int(np.argmax(history.val_metric))
        assert history.test_at_best_val() == history.test_metric[idx]

    def test_gcn_model_supported(self, small_graph, small_partition):
        model = GCNModel(
            small_graph.feature_dim, 16, small_graph.num_classes, 2, 0.0,
            np.random.default_rng(0),
        )
        trainer = DistributedTrainer(
            small_graph, small_partition, model, FullBoundarySampler(),
            aggregation="sym",
        )
        loss = trainer.train_epoch()
        assert np.isfinite(loss)

    def test_gcn_p1_equivalence(self, small_graph, small_partition):
        a = GCNModel(
            small_graph.feature_dim, 16, small_graph.num_classes, 2, 0.0,
            np.random.default_rng(3),
        )
        b = GCNModel(
            small_graph.feature_dim, 16, small_graph.num_classes, 2, 0.0,
            np.random.default_rng(4),
        )
        b.load_state_dict(a.state_dict())
        t_full = FullGraphTrainer(small_graph, a, aggregation="sym")
        t_dist = DistributedTrainer(
            small_graph, small_partition, b, FullBoundarySampler(), aggregation="sym"
        )
        assert abs(t_full.train_epoch() - t_dist.train_epoch()) < 1e-9

    def test_empty_history_nan(self):
        from repro.core import TrainHistory

        h = TrainHistory()
        assert np.isnan(h.best_val)
        assert np.isnan(h.test_at_best_val())
