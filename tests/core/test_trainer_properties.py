"""Property-based checks of the distributed trainer's metering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BoundaryNodeSampler, DistributedTrainer, PartitionRuntime
from repro.nn import GraphSAGEModel
from repro.partition import partition_graph


def make_trainer(graph, partition, p, seed):
    model = GraphSAGEModel(
        graph.feature_dim, 8, graph.num_classes, 2, 0.0,
        np.random.default_rng(0),
    )
    return DistributedTrainer(
        graph, partition, model, BoundaryNodeSampler(p), seed=seed
    )


class TestMeteringProperties:
    @given(st.floats(min_value=0.05, max_value=1.0), st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_forward_equals_backward(self, p, seed):
        graph, part = _setup()
        t = make_trainer(graph, part, p, seed)
        t.train_epoch()
        assert t.comm.total_bytes("forward") == t.comm.total_bytes("backward")

    @given(st.floats(min_value=0.05, max_value=1.0), st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_traffic_bounded_by_eq3(self, p, seed):
        """Sampled traffic never exceeds the full Eq. 3 volume."""
        graph, part = _setup()
        t = make_trainer(graph, part, p, seed)
        t.train_epoch()
        runtime = t.runtime
        width_sum = sum(t.model.dims[:-1])
        ceiling = runtime.total_boundary() * width_sum * t.comm.bytes_per_scalar
        assert t.comm.total_bytes("forward") <= ceiling

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_pairwise_consistency(self, seed):
        """The pairwise matrix sums to the per-phase totals."""
        graph, part = _setup()
        t = make_trainer(graph, part, 0.5, seed)
        t.train_epoch()
        assert t.comm.pairwise.sum() == t.comm.total_bytes()
        assert (t.comm.pairwise.diagonal() == 0).all()


_CACHE = {}


def _setup():
    if "graph" not in _CACHE:
        from repro.graph.generators import SyntheticSpec, generate_graph

        spec = SyntheticSpec(
            n=150, num_communities=4, avg_degree=8.0, feature_dim=8,
            name="prop-test",
        )
        _CACHE["graph"] = generate_graph(spec, seed=2)
        _CACHE["part"] = partition_graph(_CACHE["graph"], 3, method="metis", seed=0)
    return _CACHE["graph"], _CACHE["part"]
