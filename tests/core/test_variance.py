"""Variance analysis (Table 2 / Appendix A): estimators and bounds."""

import numpy as np
import pytest

from repro.core import PartitionRuntime
from repro.core.variance import (
    OneStepProblem,
    analytic_bounds,
    bns_estimate,
    empirical_variance,
    fastgcn_estimate,
    gamma_bound,
    graphsage_estimate,
    ladies_estimate,
)
from repro.partition import partition_graph


@pytest.fixture(scope="module")
def problem(small_graph):
    part = partition_graph(small_graph, 3, method="metis", seed=0)
    runtime = PartitionRuntime(small_graph, part)
    rank = max(runtime.ranks, key=lambda r: r.n_boundary)
    rng = np.random.default_rng(0)
    d, d_out = 8, 6
    return OneStepProblem(
        p_in=rank.p_in,
        p_bd=rank.p_bd,
        a_in=rank.a_in,
        a_bd=rank.a_bd,
        h_in=rng.normal(size=(rank.n_inner, d)),
        h_bd=rng.normal(size=(rank.n_boundary, d)),
        weight=rng.normal(size=(d, d_out)) / np.sqrt(d),
    )


class TestEstimatorsBasics:
    def test_exact_shape(self, problem):
        assert problem.exact.shape == (problem.n_inner, 6)

    def test_bns_p1_exact(self, problem):
        est = bns_estimate(problem, 1.0, np.random.default_rng(0), mode="scale")
        np.testing.assert_allclose(est, problem.exact, atol=1e-10)

    def test_bns_invalid_p(self, problem):
        with pytest.raises(ValueError):
            bns_estimate(problem, 0.0, np.random.default_rng(0))

    def test_bns_bad_mode(self, problem):
        with pytest.raises(ValueError):
            bns_estimate(problem, 0.5, np.random.default_rng(0), mode="nope")

    def test_bns_scale_unbiased(self, problem):
        draws = 300
        total = np.zeros_like(problem.exact)
        for s in range(draws):
            total += bns_estimate(problem, 0.4, np.random.default_rng(s), "scale")
        mean = total / draws
        err = np.abs(mean - problem.exact).max()
        assert err < 0.1 * np.abs(problem.exact).max() + 0.05

    def test_gamma_positive(self, problem):
        assert gamma_bound(problem) > 0


class TestVarianceOrdering:
    """Table 2: Var(BNS) < Var(LADIES) < Var(FastGCN) at matched s."""

    def test_ordering(self, problem):
        p = 0.3
        s = max(int(p * problem.n_boundary), 1)
        draws = 120
        v_bns = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"),
            problem.exact, draws,
        )
        v_ladies = empirical_variance(
            lambda rng: ladies_estimate(problem, s, rng), problem.exact, draws
        )
        v_fast = empirical_variance(
            lambda rng: fastgcn_estimate(problem, s, rng), problem.exact, draws
        )
        assert v_bns < v_ladies
        assert v_ladies <= v_fast * 1.05  # LADIES ≤ FastGCN (within noise)

    def test_renorm_lower_variance_than_scale(self, problem):
        """The self-normalised estimator (what the official code runs)
        has lower variance than the 1/p-scaled one — the reason we use
        it as the training default."""
        p = 0.3
        draws = 120
        v_scale = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"), problem.exact, draws
        )
        v_renorm = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "renorm"), problem.exact, draws
        )
        assert v_renorm < v_scale

    def test_variance_decreases_with_p(self, problem):
        draws = 100
        vs = [
            empirical_variance(
                lambda rng: bns_estimate(problem, p, rng, "scale"),
                problem.exact, draws,
            )
            for p in (0.1, 0.5, 0.9)
        ]
        assert vs[0] > vs[1] > vs[2]

    def test_graphsage_positive_variance(self, problem):
        v = empirical_variance(
            lambda rng: graphsage_estimate(problem, 3, rng), problem.exact, 30
        )
        assert v > 0


class TestAppendixBound:
    def test_empirical_below_bound(self, problem):
        """Appendix A: E‖Z̃−Z‖²_F / n ≤ γ²‖P_bd‖²_F / (p·n)."""
        p = 0.3
        v = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"),
            problem.exact, 150,
        )
        bound = analytic_bounds(problem, p)["BNS-GCN (appendix bound)"]
        assert v <= bound

    def test_bound_ordering_matches_table2(self, problem):
        # B_i ⊊ N_i always; N_i = V can coincide on small graphs whose
        # receptive field covers everything, hence <= on the right.
        b = analytic_bounds(problem, 0.3)
        assert b["BNS-GCN"] < b["LADIES"] <= b["FastGCN"]

    def test_set_inclusions(self, problem):
        b = analytic_bounds(problem, 0.3)
        assert b["|B_i|"] <= b["|N_i|"] <= b["|V|"]

    def test_bound_shrinks_with_p(self, problem):
        lo = analytic_bounds(problem, 0.1)["BNS-GCN (appendix bound)"]
        hi = analytic_bounds(problem, 0.9)["BNS-GCN (appendix bound)"]
        assert lo > hi
