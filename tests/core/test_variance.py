"""Variance analysis (Table 2 / Appendix A): estimators and bounds."""

import numpy as np
import pytest

from repro.core import PartitionRuntime
from repro.core.variance import (
    OneStepProblem,
    _fastgcn_estimate_loop,
    analytic_bounds,
    bns_estimate,
    empirical_variance,
    fastgcn_estimate,
    gamma_bound,
    graphsage_estimate,
    importance_analytic_bound,
    importance_bns_estimate,
    ladies_estimate,
)
from repro.partition import partition_graph


def _problem_for(rank, dtype=np.float64, d=8, d_out=6, seed=0):
    rng = np.random.default_rng(seed)
    return OneStepProblem(
        p_in=rank.p_in.astype(dtype),
        p_bd=rank.p_bd.astype(dtype),
        a_in=rank.a_in.astype(dtype),
        a_bd=rank.a_bd.astype(dtype),
        h_in=rng.normal(size=(rank.n_inner, d)).astype(dtype),
        h_bd=rng.normal(size=(rank.n_boundary, d)).astype(dtype),
        weight=(rng.normal(size=(d, d_out)) / np.sqrt(d)).astype(dtype),
    )


@pytest.fixture(scope="module")
def biggest_rank(small_graph):
    part = partition_graph(small_graph, 3, method="metis", seed=0)
    runtime = PartitionRuntime(small_graph, part)
    return max(runtime.ranks, key=lambda r: r.n_boundary)


@pytest.fixture(scope="module")
def problem(biggest_rank):
    return _problem_for(biggest_rank)


class TestEstimatorsBasics:
    def test_exact_shape(self, problem):
        assert problem.exact.shape == (problem.n_inner, 6)

    def test_bns_p1_exact(self, problem):
        est = bns_estimate(problem, 1.0, np.random.default_rng(0), mode="scale")
        np.testing.assert_allclose(est, problem.exact, atol=1e-10)

    def test_bns_invalid_p(self, problem):
        with pytest.raises(ValueError):
            bns_estimate(problem, 0.0, np.random.default_rng(0))

    def test_bns_bad_mode(self, problem):
        with pytest.raises(ValueError):
            bns_estimate(problem, 0.5, np.random.default_rng(0), mode="nope")

    def test_bns_scale_unbiased(self, problem):
        draws = 300
        total = np.zeros_like(problem.exact)
        for s in range(draws):
            total += bns_estimate(problem, 0.4, np.random.default_rng(s), "scale")
        mean = total / draws
        err = np.abs(mean - problem.exact).max()
        assert err < 0.1 * np.abs(problem.exact).max() + 0.05

    def test_gamma_positive(self, problem):
        assert gamma_bound(problem) > 0


class TestVarianceOrdering:
    """Table 2: Var(BNS) < Var(LADIES) < Var(FastGCN) at matched s."""

    def test_ordering(self, problem):
        p = 0.3
        s = max(int(p * problem.n_boundary), 1)
        draws = 120
        v_bns = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"),
            problem.exact, draws,
        )
        v_ladies = empirical_variance(
            lambda rng: ladies_estimate(problem, s, rng), problem.exact, draws
        )
        v_fast = empirical_variance(
            lambda rng: fastgcn_estimate(problem, s, rng), problem.exact, draws
        )
        assert v_bns < v_ladies
        assert v_ladies <= v_fast * 1.05  # LADIES ≤ FastGCN (within noise)

    def test_renorm_lower_variance_than_scale(self, problem):
        """The self-normalised estimator (what the official code runs)
        has lower variance than the 1/p-scaled one — the reason we use
        it as the training default."""
        p = 0.3
        draws = 120
        v_scale = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"), problem.exact, draws
        )
        v_renorm = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "renorm"), problem.exact, draws
        )
        assert v_renorm < v_scale

    def test_variance_decreases_with_p(self, problem):
        draws = 100
        vs = [
            empirical_variance(
                lambda rng: bns_estimate(problem, p, rng, "scale"),
                problem.exact, draws,
            )
            for p in (0.1, 0.5, 0.9)
        ]
        assert vs[0] > vs[1] > vs[2]

    def test_graphsage_positive_variance(self, problem):
        v = empirical_variance(
            lambda rng: graphsage_estimate(problem, 3, rng), problem.exact, 30
        )
        assert v > 0


class TestFastGCNVectorised:
    """The MC harness's hot path: one column-scaled SpMM must equal the
    retired per-column rank-1 update loop at a fixed seed."""

    @pytest.mark.parametrize("s", [5, 40, 200])
    def test_matches_loop_reference(self, problem, s):
        fast = fastgcn_estimate(problem, s, np.random.default_rng(42))
        loop = _fastgcn_estimate_loop(problem, s, np.random.default_rng(42))
        np.testing.assert_allclose(fast, loop, rtol=0.0, atol=1e-12)

    def test_matches_loop_with_explicit_q(self, problem):
        n_all = problem.p_all.shape[1]
        q = np.random.default_rng(1).random(n_all) + 0.1
        q /= q.sum()
        fast = fastgcn_estimate(problem, 50, np.random.default_rng(7), q=q)
        loop = _fastgcn_estimate_loop(
            problem, 50, np.random.default_rng(7), q=q
        )
        np.testing.assert_allclose(fast, loop, rtol=0.0, atol=1e-12)

    def test_ladies_unchanged(self, problem):
        """LADIES rides the same path; its support restriction and draw
        order are untouched."""
        est = ladies_estimate(problem, 30, np.random.default_rng(3))
        assert est.shape == problem.exact.shape
        assert np.isfinite(est).all()


class TestImportanceEstimator:
    def test_invalid_p(self, problem):
        with pytest.raises(ValueError):
            importance_bns_estimate(problem, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            importance_bns_estimate(
                problem, 0.5, np.random.default_rng(0), mode="nope"
            )

    def test_p1_exact(self, problem):
        est = importance_bns_estimate(
            problem, 1.0, np.random.default_rng(0), mode="scale"
        )
        np.testing.assert_allclose(est, problem.exact, atol=1e-10)

    def test_scale_unbiased(self, problem):
        draws = 300
        total = np.zeros_like(problem.exact)
        for s in range(draws):
            total += importance_bns_estimate(
                problem, 0.4, np.random.default_rng(s), "scale"
            )
        err = np.abs(total / draws - problem.exact).max()
        assert err < 0.1 * np.abs(problem.exact).max() + 0.05

    def test_lower_variance_than_uniform_scale(self, problem):
        """The tentpole claim at unit-test scale: matched expected kept
        count, strictly less empirical variance."""
        p, draws = 0.2, 150
        v_uni = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"),
            problem.exact, draws,
        )
        v_imp = empirical_variance(
            lambda rng: importance_bns_estimate(problem, p, rng, "scale"),
            problem.exact, draws,
        )
        assert v_imp < v_uni

    def test_empirical_below_importance_bound(self, problem):
        p = 0.3
        v = empirical_variance(
            lambda rng: importance_bns_estimate(problem, p, rng, "scale"),
            problem.exact, 150,
        )
        assert v <= importance_analytic_bound(problem, p)

    def test_importance_bound_below_uniform_appendix_bound(self, problem):
        """Concentrating π on the heavy columns shrinks the exact
        Σ(1/π−1)·mass expression relative to uniform π ≡ p."""
        p = 0.2
        imp = importance_analytic_bound(problem, p)
        uni = analytic_bounds(problem, p)["BNS-GCN (appendix bound)"]
        assert imp < uni

    def test_renorm_mode_runs(self, problem):
        v = empirical_variance(
            lambda rng: importance_bns_estimate(problem, 0.3, rng, "renorm"),
            problem.exact, 40,
        )
        assert np.isfinite(v) and v > 0


class TestDtypeFollowsProblem:
    """Estimator buffers and outputs follow the feature dtype — no
    silent fp64 upcasts of an fp32 problem (PR 3's discipline)."""

    @pytest.fixture(scope="class")
    def problem32(self, biggest_rank):
        return _problem_for(biggest_rank, dtype=np.float32)

    @pytest.mark.parametrize(
        "estimate",
        [
            lambda pr, rng: bns_estimate(pr, 0.4, rng, "scale"),
            lambda pr, rng: bns_estimate(pr, 0.4, rng, "renorm"),
            lambda pr, rng: importance_bns_estimate(pr, 0.4, rng, "scale"),
            lambda pr, rng: importance_bns_estimate(pr, 0.4, rng, "renorm"),
            lambda pr, rng: fastgcn_estimate(pr, 30, rng),
            lambda pr, rng: _fastgcn_estimate_loop(pr, 30, rng),
            lambda pr, rng: ladies_estimate(pr, 30, rng),
            lambda pr, rng: graphsage_estimate(pr, 3, rng),
        ],
        ids=[
            "bns-scale", "bns-renorm", "imp-scale", "imp-renorm",
            "fastgcn", "fastgcn-loop", "ladies", "graphsage",
        ],
    )
    def test_fp32_in_fp32_out(self, problem32, estimate):
        out = estimate(problem32, np.random.default_rng(0))
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_exact_is_fp32(self, problem32):
        assert problem32.exact.dtype == np.float32

    def test_empirical_variance_on_fp32_problem(self, problem32):
        v = empirical_variance(
            lambda rng: bns_estimate(problem32, 0.4, rng, "scale"),
            problem32.exact, 25,
        )
        assert np.isfinite(v) and v > 0

    def test_fp64_stays_fp64(self, problem):
        out = fastgcn_estimate(problem, 30, np.random.default_rng(0))
        assert out.dtype == np.float64


class TestAppendixBound:
    def test_empirical_below_bound(self, problem):
        """Appendix A: E‖Z̃−Z‖²_F / n ≤ γ²‖P_bd‖²_F / (p·n)."""
        p = 0.3
        v = empirical_variance(
            lambda rng: bns_estimate(problem, p, rng, "scale"),
            problem.exact, 150,
        )
        bound = analytic_bounds(problem, p)["BNS-GCN (appendix bound)"]
        assert v <= bound

    def test_bound_ordering_matches_table2(self, problem):
        # B_i ⊊ N_i always; N_i = V can coincide on small graphs whose
        # receptive field covers everything, hence <= on the right.
        b = analytic_bounds(problem, 0.3)
        assert b["BNS-GCN"] < b["LADIES"] <= b["FastGCN"]

    def test_set_inclusions(self, problem):
        b = analytic_bounds(problem, 0.3)
        assert b["|B_i|"] <= b["|N_i|"] <= b["|V|"]

    def test_bound_shrinks_with_p(self, problem):
        lo = analytic_bounds(problem, 0.1)["BNS-GCN (appendix bound)"]
        hi = analytic_bounds(problem, 0.9)["BNS-GCN (appendix bound)"]
        assert lo > hi
