"""Property-based tests for the metering model.

Hypothesis drives random rank counts, payload sizes and op sequences
through :class:`SimulatedCommunicator` and checks the invariants the
cost model (and the transport conformance suite) lean on:

* ring AllReduce wire volume is exactly ``m × ceil(2 (m-1) n / m)``
  scalars, landing on each rank's ring-successor edge;
* the ``pairwise`` matrix and the per-tag ledger are two views of the
  same bytes: row/column sums, per-tag totals and the grand total all
  reconcile;
* degenerate cases (one rank, self sends, empty payloads) meter zero.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.comm import SimulatedCommunicator
from repro.dist.transport import ring_allreduce_scalars

TAGS = ("sample_sync", "forward", "backward", "misc")

ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 7),          # src
        st.integers(0, 7),          # dst
        st.integers(0, 10_000),     # scalars
        st.sampled_from(TAGS),
    ),
    max_size=60,
)


class TestAllReduceWireVolume:
    @given(m=st.integers(2, 12), n=st.integers(1, 10**6))
    @settings(max_examples=200, deadline=None)
    def test_total_is_per_rank_ceil_times_m(self, m, n):
        comm = SimulatedCommunicator(m)
        total = comm.allreduce(n, "reduce")
        per_rank_bytes = ring_allreduce_scalars(m, n) * comm.bytes_per_scalar
        assert total == per_rank_bytes * m
        assert comm.total_bytes("reduce") == total
        # ceil semantics: per-rank scalars are 2(m-1)n/m rounded up.
        exact = 2 * (m - 1) * n / m
        per_rank_scalars = per_rank_bytes // comm.bytes_per_scalar
        assert exact <= per_rank_scalars < exact + 1

    @given(m=st.integers(2, 12), n=st.integers(1, 10**6))
    @settings(max_examples=100, deadline=None)
    def test_traffic_lands_on_ring_successor_edges(self, m, n):
        comm = SimulatedCommunicator(m)
        comm.allreduce(n, "reduce")
        per_rank_bytes = ring_allreduce_scalars(m, n) * comm.bytes_per_scalar
        for src in range(m):
            row = comm.pairwise[src]
            assert row[(src + 1) % m] == per_rank_bytes
            assert row.sum() == per_rank_bytes

    @given(n=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_single_rank_meters_nothing(self, n):
        comm = SimulatedCommunicator(1)
        assert comm.allreduce(n, "reduce") == 0
        assert comm.total_bytes() == 0
        assert ring_allreduce_scalars(1, n) == 0


class TestPairwiseLedgerReconciliation:
    @given(m=st.integers(1, 8), ops=ops_strategy)
    @settings(max_examples=200, deadline=None)
    def test_row_column_and_tag_sums_reconcile(self, m, ops):
        comm = SimulatedCommunicator(m)
        sent = np.zeros((m, m), dtype=np.int64)
        by_tag = {}
        for src, dst, n, tag in ops:
            src %= m
            dst %= m
            nbytes = comm.send(src, dst, n, tag)
            expected = 0 if (src == dst or n <= 0) else n * comm.bytes_per_scalar
            assert nbytes == expected
            sent[src, dst] += nbytes
            if nbytes:
                by_tag[tag] = by_tag.get(tag, 0) + nbytes
        assert (comm.pairwise == sent).all()
        assert np.diag(comm.pairwise).sum() == 0
        # pairwise and the tag ledger are two views of the same bytes
        assert comm.pairwise.sum() == comm.total_bytes()
        assert sum(comm._by_tag.values()) == comm.total_bytes()
        for tag in TAGS:
            assert comm.total_bytes(tag) == by_tag.get(tag, 0)
        # per-rank sent/received marginals
        for r in range(m):
            assert comm.pairwise[r].sum() == sent[r].sum()
            assert comm.pairwise[:, r].sum() == sent[:, r].sum()

    @given(m=st.integers(1, 8), ops=ops_strategy)
    @settings(max_examples=50, deadline=None)
    def test_reset_zeroes_in_place(self, m, ops):
        comm = SimulatedCommunicator(m)
        pairwise_buffer = comm.pairwise
        for src, dst, n, tag in ops:
            comm.send(src % m, dst % m, n, tag)
        comm.reset()
        # The refactor fixed the historical double initialisation:
        # reset() zeroes the one buffer instead of allocating another.
        assert comm.pairwise is pairwise_buffer
        assert comm.pairwise.sum() == 0
        assert comm.total_bytes() == 0
        assert comm._by_tag == {}

    @given(m=st.integers(1, 8), n=st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_broadcast_is_m_minus_1_sends(self, m, n):
        comm = SimulatedCommunicator(m)
        total = comm.broadcast(0, n, "sample_sync")
        if n <= 0 or m == 1:
            assert total == 0
        else:
            assert total == (m - 1) * n * comm.bytes_per_scalar
            assert (comm.pairwise[0, 1:] == n * comm.bytes_per_scalar).all()
