"""End-to-end sim-to-real equivalence (the acceptance gate of PR 2).

A seeded 4-rank BNS training run executed as *real* ranks — worker
processes over pipes, or threads over queues — must reproduce the
in-process :class:`~repro.core.trainer.DistributedTrainer` exactly:

* per-epoch loss trajectory within 1e-9,
* final (AllReduce-summed) parameter gradients within 1e-9,
* final model replicas within 1e-9 of the simulated model,
* per-tag byte ledgers and pairwise matrices **byte-for-byte equal**
  every epoch.

The simulated trainer runs all ranks on one autodiff tape; the
executor cuts the tape per layer and routes boundary-feature
gradients over the wire, so agreement here is evidence that the
layer-synchronous distributed backward *is* the single-tape gradient
(up to float summation order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampler import (
    BoundaryNodeSampler,
    FullBoundarySampler,
    ImportanceBoundarySampler,
)
from repro.core.trainer import DistributedTrainer
from repro.dist.executor import ProcessRankExecutor
from repro.graph.generators import SyntheticSpec, generate_graph
from repro.nn.models import GCNModel, GraphSAGEModel
from repro.partition import partition_graph
from repro.tensor import get_default_dtype

SEED = 3
EPOCHS = 3
# Dtype-appropriate tolerance: the layer-synchronous distributed
# backward reorders float additions relative to the single tape, so the
# agreement bar tracks the precision the suite runs at (the CI float32
# job re-runs this file under REPRO_DTYPE=float32).
TOL = 1e-9 if get_default_dtype() == np.float64 else 1e-4

SPEC = SyntheticSpec(
    n=300,
    num_communities=6,
    avg_degree=10.0,
    homophily=0.7,
    degree_exponent=2.2,
    feature_dim=12,
    feature_signal=0.4,
    name="equiv",
)


@pytest.fixture(scope="module")
def graph():
    return generate_graph(SPEC, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    return partition_graph(graph, 4, method="metis", seed=0)


def _make_model(graph, kind="sage", dtype=None):
    cls = GraphSAGEModel if kind == "sage" else GCNModel
    # dropout=0: the simulated trainer threads one RNG through all
    # ranks' masks, which has no multi-process analogue.
    return cls(graph.feature_dim, 8, graph.num_classes, 2, 0.0,
               np.random.default_rng(1), dtype=dtype)


def _simulated_run(graph, partition, sampler, kind="sage", epochs=EPOCHS,
                   dtype=None):
    model = _make_model(graph, kind, dtype)
    trainer = DistributedTrainer(
        graph, partition, model, sampler, lr=0.01, seed=SEED,
        aggregation="sym" if kind == "gcn" else "mean",
    )
    by_tag, pairwise = [], []
    for _ in range(epochs):
        trainer.train_epoch()
        pw, tags = trainer.comm.meter.snapshot()
        by_tag.append(tags)
        pairwise.append(pw)
    grads = np.concatenate([p.grad.ravel() for p in model.parameters()])
    return trainer, model, by_tag, pairwise, grads


def _executor_run(graph, partition, sampler, transport, kind="sage",
                  epochs=EPOCHS, dtype=None, **kwargs):
    model = _make_model(graph, kind, dtype)
    executor = ProcessRankExecutor(
        graph, partition, model, sampler, transport=transport,
        lr=0.01, seed=SEED,
        aggregation="sym" if kind == "gcn" else "mean", **kwargs,
    )
    result = executor.train(epochs)
    return executor, model, result


def _assert_equivalent(sim, dist, tol=None):
    tol = TOL if tol is None else tol
    trainer, sim_model, sim_tags, sim_pairwise, sim_grads = sim
    executor, dist_model, result = dist
    # loss trajectory
    np.testing.assert_allclose(
        result.history.loss, trainer.history.loss, rtol=0.0, atol=tol
    )
    # final gradients (AllReduce sum vs single-tape)
    np.testing.assert_allclose(result.grad_flat, sim_grads, rtol=0.0, atol=tol)
    # final replicas vs the simulated model
    for name, arr in sim_model.state_dict().items():
        np.testing.assert_allclose(
            dist_model.state_dict()[name], arr, rtol=0.0, atol=tol,
            err_msg=f"parameter {name} diverged",
        )
    # byte-for-byte metering, every epoch
    assert result.by_tag == sim_tags
    for pw_dist, pw_sim in zip(result.pairwise, sim_pairwise):
        assert (pw_dist == pw_sim).all()


class TestMultiprocessEquivalence:
    """The ISSUE acceptance case: 4 real processes vs the simulation."""

    def test_bns_seeded_4rank(self, graph, partition):
        sampler = BoundaryNodeSampler(0.5)
        sim = _simulated_run(graph, partition, sampler)
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "multiprocess",
            timeout=240.0,
        )
        _assert_equivalent(sim, dist)


class TestLocalTransportEquivalence:
    """Thread-backed runs: same assertions, fast enough to sweep configs."""

    def test_bns_p05(self, graph, partition):
        sim = _simulated_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local"
        )
        _assert_equivalent(sim, dist)

    def test_vanilla_p1(self, graph, partition):
        sim = _simulated_run(graph, partition, FullBoundarySampler())
        dist = _executor_run(
            graph, partition, FullBoundarySampler(), "local"
        )
        _assert_equivalent(sim, dist)

    def test_isolated_p0(self, graph, partition):
        sim = _simulated_run(graph, partition, BoundaryNodeSampler(0.0))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.0), "local"
        )
        _assert_equivalent(sim, dist)

    def test_gcn_sym_aggregation(self, graph, partition):
        sim = _simulated_run(graph, partition, BoundaryNodeSampler(0.5), "gcn")
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", "gcn"
        )
        _assert_equivalent(sim, dist)

    def test_scale_mode_estimator(self, graph, partition):
        sim = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.4, mode="scale")
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.4, mode="scale"), "local"
        )
        _assert_equivalent(sim, dist)

    def test_single_rank_degenerate(self, graph):
        part1 = partition_graph(graph, 1, method="random", seed=0)
        sim = _simulated_run(graph, part1, FullBoundarySampler())
        dist = _executor_run(graph, part1, FullBoundarySampler(), "local")
        _assert_equivalent(sim, dist)
        # one rank, no boundary: nothing should have been metered p2p
        assert all(t.get("forward", 0) == 0 for t in dist[2].by_tag)

    def test_tree_allreduce_matches_too(self, graph, partition):
        """Algorithm choice moves the data differently but must not
        change gradients (bitwise-identical replicas) or the ledger."""
        sim = _simulated_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local",
            allreduce_algorithm="tree",
        )
        _assert_equivalent(sim, dist)

    def test_multilabel_bce_loss_path(self):
        spec = SyntheticSpec(
            n=200, num_communities=5, avg_degree=8.0, homophily=0.8,
            feature_dim=12, feature_signal=0.5, multilabel=True,
            num_labels=6, labels_per_node=2.0, name="equiv-ml",
        )
        g = generate_graph(spec, seed=11)
        part = partition_graph(g, 3, method="metis", seed=0)
        sim = _simulated_run(g, part, BoundaryNodeSampler(0.5), epochs=2)
        dist = _executor_run(
            g, part, BoundaryNodeSampler(0.5), "local", epochs=2
        )
        _assert_equivalent(sim, dist)

    def test_evaluate_after_train(self, graph, partition):
        _, _, result = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", epochs=1
        )
        executor, _, _ = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", epochs=1
        )
        scores = executor.evaluate()
        assert set(scores) == {"train", "val", "test"}
        assert all(0.0 <= v <= 1.0 for v in scores.values())
        assert len(result.history.loss) == 1

    def test_evaluate_matches_simulated_trainer(self, graph, partition):
        """executor.evaluate() after train() scores exactly what
        DistributedTrainer.evaluate() scores on the same seeded run —
        the parent replica really is synchronised from the workers'
        final state, not left at initialisation."""
        sim_model = _make_model(graph)
        trainer = DistributedTrainer(
            graph, partition, sim_model, BoundaryNodeSampler(0.5),
            lr=0.01, seed=SEED,
        )
        for _ in range(EPOCHS):
            trainer.train_epoch()
        sim_scores = trainer.evaluate()

        executor, dist_model, _ = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local"
        )
        dist_scores = executor.evaluate()

        assert set(dist_scores) == set(sim_scores)
        for split, sim_value in sim_scores.items():
            assert dist_scores[split] == pytest.approx(sim_value, abs=1e-12), (
                f"{split} score diverged"
            )
        # The scores come from trained weights: a fresh replica of the
        # same init must not already score identically on train loss
        # terms (guards against evaluate() reading untrained state).
        fresh = _make_model(graph)
        for name, arr in fresh.state_dict().items():
            if not np.array_equal(arr, dist_model.state_dict()[name]):
                break
        else:
            raise AssertionError("executor model still at initialisation")


class TestSharedMemoryEquivalence:
    """The zero-copy acceptance case: 4 real processes over
    shared-memory rings must match the simulation exactly like the
    pipe-backed transport does — same tolerances, byte-identical
    ledger — and keep `blocked_seconds` honest (ring waits are priced
    like pipe polls, so blocked_fraction stays comparable across
    transports)."""

    def test_bns_seeded_4rank_shm(self, graph, partition):
        sampler = BoundaryNodeSampler(0.5)
        sim = _simulated_run(graph, partition, sampler)
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "shm",
            timeout=240.0,
        )
        _assert_equivalent(sim, dist)
        # blocked_seconds honesty for the ring data plane: waits were
        # recorded (real exchanges stall somewhere), every per-rank
        # figure is sane (0 <= blocked <= wall), and the derived
        # fraction is a valid number comparable across transports.
        result = dist[2]
        assert sum(map(sum, result.blocked_recv_seconds)) > 0.0
        for wall_row, blocked_row in zip(
            result.epoch_wall_seconds, result.blocked_recv_seconds
        ):
            for wall, blocked in zip(wall_row, blocked_row):
                assert 0.0 <= blocked <= wall
        assert 0.0 < result.blocked_fraction() < 1.0

    def test_fp32_shm_4rank_matches_sim(self, graph, partition):
        sim = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float32"
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "shm",
            dtype="float32", timeout=240.0,
        )
        _assert_equivalent(sim, dist, tol=1e-4)
        # fp32 frames cross the rings as fp32 — no upcast on the path.
        assert dist[2].grad_flat.dtype == np.float32
        for arr in dist[1].state_dict().values():
            assert arr.dtype == np.float32


class TestImportanceSamplerEquivalence:
    """The importance-sampling acceptance case: the executor ships the
    sampler *spec*; every worker derives π rank-locally from its own
    RankData, so kept sets, numerics and the byte ledger all match the
    simulated path exactly."""

    def test_importance_seeded_4rank_multiprocess(self, graph, partition):
        sim = _simulated_run(
            graph, partition, ImportanceBoundarySampler(0.4)
        )
        dist = _executor_run(
            graph, partition, ImportanceBoundarySampler(0.4),
            "multiprocess", timeout=240.0,
        )
        _assert_equivalent(sim, dist)

    def test_importance_scale_mode_local(self, graph, partition):
        """HT-weighted (vector col_scale) operators over real exchanges."""
        sampler = ImportanceBoundarySampler(0.4, mode="scale")
        sim = _simulated_run(graph, partition, sampler)
        dist = _executor_run(
            graph, partition,
            ImportanceBoundarySampler(0.4, mode="scale"), "local",
        )
        _assert_equivalent(sim, dist)

    def test_importance_fp32_local(self, graph, partition):
        sampler = ImportanceBoundarySampler(0.4, mode="scale")
        sim = _simulated_run(graph, partition, sampler, dtype="float32")
        dist = _executor_run(
            graph, partition, sampler, "local", dtype="float32"
        )
        _assert_equivalent(sim, dist, tol=1e-4)

    def test_wire_format_unchanged_vs_uniform_bns(self, graph, partition):
        """π never ships: the task payload for an importance run is the
        same size as uniform BNS (the spec is three floats), and the
        sample_sync tag still carries only kept ids."""
        import pickle

        from repro.dist.executor import ProcessRankExecutor

        def task_payloads(sampler):
            executor = ProcessRankExecutor(
                graph, partition, _make_model(graph), sampler,
                transport="local", lr=0.01, seed=SEED,
            )
            return [pickle.dumps(t) for t in executor._tasks(epochs=1)]

        uniform = task_payloads(BoundaryNodeSampler(0.4))
        importance = task_payloads(ImportanceBoundarySampler(0.4))
        for u, i in zip(uniform, importance):
            # identical modulo the sampler spec itself (a few bytes of
            # class path + floats) — no per-node vectors ride along
            assert abs(len(i) - len(u)) < 256


class TestFloat32Equivalence:
    """The dtype-subsystem acceptance case: a seeded fp32 4-rank run
    behind real ranks matches the fp32 simulated path to 1e-4, ships
    fp32 on the wire, and meters exactly half the fp64 ledger."""

    FP32_TOL = 1e-4

    def test_fp32_multiprocess_4rank_matches_sim(self, graph, partition):
        sim = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float32"
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "multiprocess",
            dtype="float32", timeout=240.0,
        )
        _assert_equivalent(sim, dist, tol=self.FP32_TOL)
        # The wire path is fp32 end to end — the summed gradient that
        # came back from the real AllReduce, and the final replicas.
        assert dist[2].grad_flat.dtype == np.float32
        for arr in dist[1].state_dict().values():
            assert arr.dtype == np.float32

    def test_fp32_ledger_is_exactly_half_of_fp64(self, graph, partition):
        sim64 = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float64"
        )
        sim32 = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float32"
        )
        _, _, tags64, pairwise64, _ = sim64
        _, _, tags32, pairwise32, _ = sim32
        for t64, t32 in zip(tags64, tags32):
            assert set(t64) == set(t32)
            for tag in t64:
                assert t64[tag] == 2 * t32[tag], tag
        for pw64, pw32 in zip(pairwise64, pairwise32):
            assert (pw64 == 2 * pw32).all()

    def test_fp32_local_transport_sweep(self, graph, partition):
        """Cheaper thread-backed variant, p in {0, 0.5, 1}."""
        for sampler in (
            BoundaryNodeSampler(0.0),
            BoundaryNodeSampler(0.5),
            FullBoundarySampler(),
        ):
            sim = _simulated_run(graph, partition, sampler, dtype="float32")
            dist = _executor_run(
                graph, partition, sampler, "local", dtype="float32"
            )
            _assert_equivalent(sim, dist, tol=self.FP32_TOL)

    def test_fp32_trainer_vs_full_graph(self, graph, partition):
        """p=1 fp32 partition-parallel == fp32 single-device training."""
        from repro.baselines import FullGraphTrainer

        m_full = _make_model(graph, dtype="float32")
        m_dist = _make_model(graph, dtype="float32")
        m_dist.load_state_dict(m_full.state_dict())
        t_full = FullGraphTrainer(graph, m_full, lr=0.01)
        t_dist = DistributedTrainer(
            graph, partition, m_dist, FullBoundarySampler(), lr=0.01
        )
        for _ in range(3):
            lf = t_full.train_epoch()
            ld = t_dist.train_epoch()
            assert abs(lf - ld) < self.FP32_TOL

    def test_fp32_gcn_sym_aggregation(self, graph, partition):
        """Regression: sym_norm's self-loop identity used to promote
        the whole GCN operator back to fp64 (metered 4 B, shipped 8)."""
        sim = _simulated_run(
            graph, partition, BoundaryNodeSampler(0.5), "gcn", dtype="float32"
        )
        assert sim[0].runtime.full_prop.dtype == np.float32
        assert all(
            r.p_in.dtype == np.float32 and r.p_bd.dtype == np.float32
            for r in sim[0].runtime.ranks
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", "gcn",
            dtype="float32",
        )
        _assert_equivalent(sim, dist, tol=self.FP32_TOL)
