"""Pipelined (staleness-1) execution on real ranks vs PipelinedTrainer.

The acceptance gate of the overlapped-execution PR: a seeded 4-rank
multiprocess run under ``schedule="pipelined"`` must reproduce the
in-process :class:`~repro.core.pipeline.PipelinedTrainer` — the same
stale-feature forward, the same ghost-loss stale-gradient delivery —
at dtype-appropriate tolerance (1e-9 fp64 / 1e-4 fp32):

* per-epoch loss trajectory,
* final (AllReduce-summed) parameter gradients,
* final model replicas,
* per-tag byte ledgers and pairwise matrices **byte-for-byte equal**
  every epoch (staleness changes *when* traffic moves, not how much).

On top of equivalence, the executor must *measure* the overlap: every
rank splits epoch wall time into compute vs blocked-in-recv seconds,
which is what ``BENCH_sampling.json:e2e_epoch`` reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import PipelinedTrainer
from repro.core.sampler import (
    BoundaryNodeSampler,
    FullBoundarySampler,
    ImportanceBoundarySampler,
)
from repro.core.trainer import DistributedTrainer
from repro.dist.executor import ProcessRankExecutor
from repro.graph.generators import SyntheticSpec, generate_graph
from repro.nn.models import GCNModel, GraphSAGEModel
from repro.partition import partition_graph
from repro.tensor import get_default_dtype

SEED = 3
EPOCHS = 4
TOL = 1e-9 if get_default_dtype() == np.float64 else 1e-4

SPEC = SyntheticSpec(
    n=300,
    num_communities=6,
    avg_degree=10.0,
    homophily=0.7,
    degree_exponent=2.2,
    feature_dim=12,
    feature_signal=0.4,
    name="pipelined-equiv",
)


@pytest.fixture(scope="module")
def graph():
    return generate_graph(SPEC, seed=7)


@pytest.fixture(scope="module")
def partition(graph):
    return partition_graph(graph, 4, method="metis", seed=0)


def _make_model(graph, kind="sage", dtype=None):
    cls = GraphSAGEModel if kind == "sage" else GCNModel
    # dropout=0: per-rank dropout streams have no simulated analogue.
    return cls(graph.feature_dim, 8, graph.num_classes, 2, 0.0,
               np.random.default_rng(1), dtype=dtype)


def _sim_pipelined_run(graph, partition, sampler, kind="sage", epochs=EPOCHS,
                       dtype=None):
    model = _make_model(graph, kind, dtype)
    trainer = PipelinedTrainer(
        graph, partition, model, sampler, lr=0.01, seed=SEED,
        aggregation="sym" if kind == "gcn" else "mean",
    )
    by_tag, pairwise = [], []
    for _ in range(epochs):
        trainer.train_epoch()
        pw, tags = trainer.comm.meter.snapshot()
        by_tag.append(tags)
        pairwise.append(pw)
    grads = np.concatenate([p.grad.ravel() for p in model.parameters()])
    return trainer, model, by_tag, pairwise, grads


def _executor_run(graph, partition, sampler, transport, kind="sage",
                  epochs=EPOCHS, dtype=None, **kwargs):
    model = _make_model(graph, kind, dtype)
    executor = ProcessRankExecutor(
        graph, partition, model, sampler, transport=transport,
        lr=0.01, seed=SEED, schedule="pipelined",
        aggregation="sym" if kind == "gcn" else "mean", **kwargs,
    )
    result = executor.train(epochs)
    return executor, model, result


def _assert_equivalent(sim, dist, tol=None):
    tol = TOL if tol is None else tol
    trainer, sim_model, sim_tags, sim_pairwise, sim_grads = sim
    _executor, dist_model, result = dist
    np.testing.assert_allclose(
        result.history.loss, trainer.history.loss, rtol=0.0, atol=tol
    )
    np.testing.assert_allclose(result.grad_flat, sim_grads, rtol=0.0, atol=tol)
    for name, arr in sim_model.state_dict().items():
        np.testing.assert_allclose(
            dist_model.state_dict()[name], arr, rtol=0.0, atol=tol,
            err_msg=f"parameter {name} diverged",
        )
    assert result.by_tag == sim_tags
    for pw_dist, pw_sim in zip(result.pairwise, sim_pairwise):
        assert (pw_dist == pw_sim).all()


class TestMultiprocessPipelined:
    """The ISSUE acceptance case: 4 real processes, staleness-1."""

    def test_pipelined_seeded_4rank(self, graph, partition):
        sim = _sim_pipelined_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "multiprocess",
            timeout=240.0,
        )
        _assert_equivalent(sim, dist)

    def test_pipelined_importance_4rank(self, graph, partition):
        """Importance-weighted sampling under staleness-1: the workers
        derive π locally and the stale exchanges still match the
        simulated PipelinedTrainer byte for byte."""
        sim = _sim_pipelined_run(
            graph, partition, ImportanceBoundarySampler(0.4)
        )
        dist = _executor_run(
            graph, partition, ImportanceBoundarySampler(0.4),
            "multiprocess", timeout=240.0,
        )
        _assert_equivalent(sim, dist)


class TestSharedMemoryPipelined:
    """Staleness-1 over shared-memory rings: the non-blocking
    post_exchange/complete_exchange path rides the inherited Endpoint
    machinery, so the stale exchanges must match the simulated
    PipelinedTrainer exactly as the pipe-backed transport does."""

    def test_pipelined_seeded_4rank_shm(self, graph, partition):
        sim = _sim_pipelined_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "shm",
            timeout=240.0,
        )
        _assert_equivalent(sim, dist)

    def test_pipelined_fp32_4rank_shm(self, graph, partition):
        sim = _sim_pipelined_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float32"
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "shm",
            dtype="float32", timeout=240.0,
        )
        _assert_equivalent(sim, dist, tol=1e-4)


class TestLocalPipelined:
    """Thread-backed pipelined runs: fast enough to sweep configs."""

    def test_bns_p05(self, graph, partition):
        sim = _sim_pipelined_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local"
        )
        _assert_equivalent(sim, dist)

    def test_vanilla_p1(self, graph, partition):
        sim = _sim_pipelined_run(graph, partition, FullBoundarySampler())
        dist = _executor_run(graph, partition, FullBoundarySampler(), "local")
        _assert_equivalent(sim, dist)

    def test_isolated_p0(self, graph, partition):
        """No boundary traffic: stale caches never matter."""
        sim = _sim_pipelined_run(graph, partition, BoundaryNodeSampler(0.0))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.0), "local"
        )
        _assert_equivalent(sim, dist)

    def test_importance_scale_mode(self, graph, partition):
        """HT-weighted stale operators (vector col_scale) pipeline too."""
        sim = _sim_pipelined_run(
            graph, partition, ImportanceBoundarySampler(0.4, mode="scale")
        )
        dist = _executor_run(
            graph, partition,
            ImportanceBoundarySampler(0.4, mode="scale"), "local",
        )
        _assert_equivalent(sim, dist)

    def test_gcn_sym_aggregation(self, graph, partition):
        sim = _sim_pipelined_run(
            graph, partition, BoundaryNodeSampler(0.5), "gcn"
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", "gcn"
        )
        _assert_equivalent(sim, dist)

    def test_tree_allreduce(self, graph, partition):
        sim = _sim_pipelined_run(graph, partition, BoundaryNodeSampler(0.5))
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local",
            allreduce_algorithm="tree",
        )
        _assert_equivalent(sim, dist)

    def test_fp32_pipelined(self, graph, partition):
        sim = _sim_pipelined_run(
            graph, partition, BoundaryNodeSampler(0.5), dtype="float32"
        )
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local",
            dtype="float32",
        )
        _assert_equivalent(sim, dist, tol=1e-4)
        assert dist[2].grad_flat.dtype == np.float32

    def test_single_rank_degenerate(self, graph):
        part1 = partition_graph(graph, 1, method="random", seed=0)
        sim = _sim_pipelined_run(graph, part1, FullBoundarySampler())
        dist = _executor_run(graph, part1, FullBoundarySampler(), "local")
        _assert_equivalent(sim, dist)


class TestScheduleSemantics:
    """Properties of the schedule itself, not just sim agreement."""

    def test_warmup_epoch_matches_synchronous(self, graph, partition):
        """Epoch 0 serves fresh features (PipeGCN's first iteration),
        so its loss equals the synchronous schedule's epoch 0."""
        model = _make_model(graph)
        sync = DistributedTrainer(
            graph, partition, model, BoundaryNodeSampler(0.5),
            lr=0.01, seed=SEED,
        )
        sync.train_epoch()
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", epochs=1
        )
        assert abs(dist[2].history.loss[0] - sync.history.loss[0]) < TOL

    def test_staleness_changes_bytes_not_at_all(self, graph, partition):
        """Synchronous and pipelined ledgers are identical per epoch —
        staleness moves traffic in time, not in volume."""
        model_a = _make_model(graph)
        sync_ex = ProcessRankExecutor(
            graph, partition, model_a, BoundaryNodeSampler(0.5),
            transport="local", lr=0.01, seed=SEED, schedule="synchronous",
        )
        sync_res = sync_ex.train(EPOCHS)
        dist = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local"
        )
        assert dist[2].by_tag == sync_res.by_tag
        for pw_a, pw_b in zip(dist[2].pairwise, sync_res.pairwise):
            assert (pw_a == pw_b).all()

    def test_wall_and_blocked_seconds_recorded(self, graph, partition):
        """Every rank's epoch splits into compute vs blocked-in-recv."""
        _, _, result = _executor_run(
            graph, partition, BoundaryNodeSampler(0.5), "local", epochs=3
        )
        m = partition.num_parts
        assert len(result.epoch_wall_seconds) == 3
        assert len(result.blocked_recv_seconds) == 3
        for walls, blocked in zip(
            result.epoch_wall_seconds, result.blocked_recv_seconds
        ):
            assert len(walls) == m and len(blocked) == m
            for w, b in zip(walls, blocked):
                assert w > 0.0
                assert 0.0 <= b <= w + 1e-6
        assert 0.0 <= result.blocked_fraction() <= 1.0
        assert result.schedule == "pipelined"
        # history.wall_seconds is the slowest rank of each epoch.
        assert result.history.wall_seconds == [
            max(walls) for walls in result.epoch_wall_seconds
        ]

    def test_flops_match_simulated_accounting(self, graph, partition):
        """The worker prices compute through the shared layer_flops
        helper — identical to what the simulated trainer records."""
        model = _make_model(graph)
        sim = DistributedTrainer(
            graph, partition, model, FullBoundarySampler(), lr=0.01,
            seed=SEED,
        )
        from repro.dist.cost_model import layer_flops

        dist = _executor_run(
            graph, partition, FullBoundarySampler(), "local", epochs=1
        )
        dims = model.dims
        for rank_flops, r in zip(dist[2].flops[0], sim.runtime.ranks):
            plan = FullBoundarySampler().plan(r, np.random.default_rng(0))
            expected = sum(
                layer_flops(plan.prop.nnz, r.n_inner, dims[l], dims[l + 1])
                for l in range(len(dims) - 1)
            )
            assert rank_flops == expected

    def test_unknown_schedule_rejected(self, graph, partition):
        with pytest.raises(ValueError, match="schedule"):
            ProcessRankExecutor(
                graph, partition, _make_model(graph),
                BoundaryNodeSampler(0.5), transport="local",
                schedule="warp-speed",
            )
