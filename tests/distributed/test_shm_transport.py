"""Shared-memory transport: framing, lifecycle, deadlines.

The conformance/equivalence suites prove ``SharedMemoryTransport``
interchangeable with the other transports; this file tests what is
*specific* to the shm data plane:

* ring-buffer framing under arbitrary frame-size sequences
  (hypothesis): wraparound, frames larger than the ring (chunked
  streaming), interned tags/dtypes, multi-dimensional shapes — bytes
  out are always the bytes in, never corruption;
* segment lifecycle: the parent creates and unlinks, workers only
  close — so a worker SIGKILLed mid-epoch leaves nothing in
  ``/dev/shm`` and CPython's resource tracker has nothing to warn
  about;
* the named launch deadline: ``launch_timeout`` defaults to
  ``recv_timeout`` uniformly on all three data-moving transports (the
  multiprocess transport used to widen it to ``2 ×`` silently), and
  peer *death* is detected in a small fraction of ``recv_timeout``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
import uuid

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.transport import (
    _MIN_RING_NBYTES,
    LocalTransport,
    MultiprocessTransport,
    SharedMemoryTransport,
    TransportError,
    _RingWaiter,
    _ShmEndpoint,
    _ShmRing,
)

DATA_MOVING = [LocalTransport, MultiprocessTransport, SharedMemoryTransport]


def _shm_leftovers() -> list:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available")
    return [f for f in os.listdir("/dev/shm") if f.startswith("rg")]


# ----------------------------------------------------------------------
# Ring framing (hypothesis)
# ----------------------------------------------------------------------
_DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint8]

_frame_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1500),   # elements
        st.sampled_from(range(len(_DTYPES))),       # dtype
        st.sampled_from(["forward", "backward", "reduce", "x"]),
        st.booleans(),                              # reshape to 2-d?
    ),
    min_size=1,
    max_size=20,
)


class _FramingHarness:
    """A producer endpoint and a consumer endpoint over one real ring.

    Exercises the actual ``_ShmEndpoint`` framing (``_put``/``_get``)
    in-process: the producer runs in a thread (its blocking chunked
    writes need the consumer draining concurrently once a frame
    outgrows the ring), the consumer in the test thread.
    """

    def __init__(self, ring_bytes: int, timeout: float = 30.0) -> None:
        name = f"rgtest_{uuid.uuid4().hex[:8]}"
        self.ring = _ShmRing.create(name, ring_bytes)
        self.reader_ring = _ShmRing.attach(name)
        # conns={} -> the waiters have no control pipe to consult, they
        # just spin/sleep against their deadlines.
        self.producer = _ShmEndpoint(
            0, 2, 8, timeout, {}, send_rings={1: self.ring}, recv_rings={})
        self.consumer = _ShmEndpoint(
            1, 2, 8, timeout, {}, send_rings={}, recv_rings={0: self.reader_ring})

    def close(self) -> None:
        self.producer.close()
        self.consumer.close()
        self.ring.unlink()


@settings(max_examples=40, deadline=None)
@given(frames=_frame_strategy, ring_kib=st.sampled_from([4, 16]))
def test_ring_framing_never_corrupts(frames, ring_kib):
    """Any sequence of frame sizes — empty, sub-ring, multiples of the
    ring size (forced wraparound), several times larger than the ring
    (chunked streaming) — round-trips bit-exactly in FIFO order."""
    harness = _FramingHarness(ring_kib * 1024)
    try:
        rng = np.random.default_rng(0)
        payloads = []
        for n, dtype_idx, tag, reshape in frames:
            dtype = _DTYPES[dtype_idx]
            arr = (rng.integers(0, 100, size=n)).astype(dtype)
            if reshape and n % 2 == 0 and n > 0:
                arr = arr.reshape(2, n // 2)
            payloads.append((tag, arr))

        failures = []

        def produce():
            try:
                for tag, arr in payloads:
                    harness.producer._put(1, (tag, arr))
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        thread = threading.Thread(target=produce, daemon=True)
        thread.start()
        for tag, arr in payloads:
            got_tag, got = harness.consumer._get(0)
            assert got_tag == tag
            assert got.dtype == arr.dtype
            assert got.shape == arr.shape
            np.testing.assert_array_equal(got, arr)
        thread.join(30.0)
        assert not thread.is_alive(), "producer wedged"
        assert not failures, failures
    finally:
        harness.close()


def test_frame_larger_than_ring_streams_through():
    """A frame ~200x the ring size streams through chunk by chunk —
    correctness never depends on ring_bytes, only latency does."""
    harness = _FramingHarness(_MIN_RING_NBYTES)
    try:
        big = np.arange(100_000, dtype=np.float64)  # 800 KB vs 4 KiB ring

        def produce():
            harness.producer._put(1, ("big", big))

        thread = threading.Thread(target=produce, daemon=True)
        thread.start()
        tag, got = harness.consumer._get(0)
        thread.join(10.0)
        assert tag == "big"
        np.testing.assert_array_equal(got, big)
    finally:
        harness.close()


def test_ring_read_wait_raises_after_timeout():
    """An empty ring with no sender raises TransportError after the
    no-progress window — never a hang."""
    harness = _FramingHarness(_MIN_RING_NBYTES, timeout=0.2)
    try:
        t0 = time.monotonic()
        with pytest.raises(TransportError, match="timed out"):
            harness.consumer._get(0)
        assert time.monotonic() - t0 < 5.0
    finally:
        harness.close()


def test_ring_rejects_undersized_buffers():
    with pytest.raises(ValueError, match="ring_bytes"):
        SharedMemoryTransport(2, ring_bytes=16)
    with pytest.raises(ValueError, match="ring_bytes"):
        _ShmRing.create(f"rgtest_{uuid.uuid4().hex[:8]}", 16)


def test_waiter_reports_peer_death_via_control_pipe():
    """A dead peer closes its control-pipe end; the blocked waiter's
    poll wakes on the EOF, rechecks the ring once (the peer may have
    published a final frame before exiting cleanly), and raises on the
    persistent stall — peer death is never mistaken for an empty ring,
    and a clean exit never loses the last frame."""
    import multiprocessing as mp
    import threading

    name = f"rgtest_{uuid.uuid4().hex[:8]}"
    ring = _ShmRing.create(name, _MIN_RING_NBYTES)
    a, b = mp.Pipe(duplex=True)
    b.close()  # peer gone
    try:
        waiter = _RingWaiter(0, 1, a, threading.Lock(),
                             timeout=30.0, what="waiting for")
        # First wait absorbs the EOF as a wake-up and returns so the
        # caller can drain anything already published ...
        waiter.wait_readable(ring)
        assert waiter.peer_dead
        # ... and a stall that persists after that is fatal.
        with pytest.raises(TransportError, match="peer died"):
            waiter.wait_readable(ring)
        # Doorbells to a dead peer are a no-op, not an error: the
        # cursor move that triggered them is still valid locally.
        waiter.ring_doorbell()
    finally:
        a.close()
        ring.close()
        ring.unlink()


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_normal_launch_unlinks_every_segment(self):
        before = set(_shm_leftovers())
        transport = SharedMemoryTransport(3, recv_timeout=20.0)

        def worker(ep, _):
            peer = (ep.rank + 1) % ep.num_parts
            ep.send(peer, np.ones(8), "x")
            ep.recv((ep.rank - 1) % ep.num_parts, "x")
            return True

        assert transport.launch(worker, timeout=60.0) == [True] * 3
        assert len(transport._segment_names) == 6  # directed pairs
        after = set(_shm_leftovers())
        assert not (after - before)
        for name in transport._segment_names:
            assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_failed_creation_cleans_up_partial_mesh(self, monkeypatch):
        """If the k-th segment fails to allocate, segments 0..k-1 are
        unlinked before the error propagates (a failed launch must not
        leak /dev/shm capacity)."""
        from multiprocessing import shared_memory

        before = set(_shm_leftovers())
        real = shared_memory.SharedMemory
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if kwargs.get("create") and calls["n"] >= 3:
                raise OSError(28, "No space left on device")
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
        transport = SharedMemoryTransport(3, recv_timeout=5.0)
        with pytest.raises(TransportError, match="/dev/shm"):
            transport.launch(lambda ep, _: True, timeout=10.0)
        monkeypatch.undo()
        assert set(_shm_leftovers()) == before

    def test_sigkilled_worker_leaks_nothing(self):
        """Kill a worker mid-epoch (SIGKILL — no atexit, no finally on
        the worker side runs) in a fresh interpreter: every segment is
        still unlinked by the parent, and the resource tracker prints
        no 'leaked shared_memory' warning.  Runs as a subprocess so the
        tracker's own stderr is captured."""
        script = r"""
import os, signal, sys
import numpy as np
sys.path.insert(0, %(src)r)
from repro.dist.transport import SharedMemoryTransport, TransportError

t = SharedMemoryTransport(2, recv_timeout=30.0)

def worker(ep, _):
    peer = 1 - ep.rank
    for epoch in range(100):
        ep.send(peer, np.full(1000, float(epoch)), "feat")
        ep.recv(peer, "feat")
        if ep.rank == 1 and epoch == 2:
            os.kill(os.getpid(), signal.SIGKILL)  # mid-epoch, no cleanup
    return True

try:
    t.launch(worker, timeout=60.0)
    print("NO-ERROR")
except TransportError as exc:
    print("RAISED:", str(exc)[:60])
leftover = [n for n in t._segment_names
            if os.path.exists(os.path.join("/dev/shm", n))]
print("LEFTOVER:", leftover)
"""
        proc = subprocess.run(
            [sys.executable, "-c", script % {"src": os.path.abspath("src")}],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RAISED:" in proc.stdout
        assert "LEFTOVER: []" in proc.stdout
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_worker_only_closes_never_unlinks(self):
        """A worker whose endpoint is closed must leave the segments
        linked for its peers — unlink is the creator's alone.  Probed
        in-process: closing an attached ring keeps the name alive."""
        name = f"rgtest_{uuid.uuid4().hex[:8]}"
        ring = _ShmRing.create(name, _MIN_RING_NBYTES)
        try:
            attached = _ShmRing.attach(name)
            attached.close()  # the worker-side teardown
            assert os.path.exists(os.path.join("/dev/shm", name))
        finally:
            ring.close()
            ring.unlink()
        assert not os.path.exists(os.path.join("/dev/shm", name))


# ----------------------------------------------------------------------
# Named launch deadline + dead-peer latency
# ----------------------------------------------------------------------
class TestLaunchDeadline:
    @pytest.mark.parametrize("cls", DATA_MOVING)
    def test_launch_timeout_defaults_to_recv_timeout(self, cls):
        """The bugfix: the multiprocess transport used to widen its
        result-collection window to `recv_timeout * 2` silently while
        the local transport used `recv_timeout` — the launch deadline
        is now a named knob with one uniform default."""
        assert cls(2).launch_timeout == cls(2).recv_timeout == 60.0
        assert cls(2, recv_timeout=7.5).launch_timeout == 7.5
        assert cls(2, recv_timeout=5.0, launch_timeout=12.0).launch_timeout == 12.0

    @pytest.mark.parametrize("cls", DATA_MOVING)
    def test_hung_worker_fails_at_the_named_deadline(self, cls):
        """A worker that never returns fails at ~launch_timeout — not
        at 2x, not at the per-recv window."""
        transport = cls(2, recv_timeout=30.0, launch_timeout=0.5)

        def worker(ep, _):
            time.sleep(60.0)
            return True

        t0 = time.monotonic()
        with pytest.raises(TransportError, match="0.5"):
            transport.launch(worker)
        assert time.monotonic() - t0 < 10.0

    @pytest.mark.parametrize("cls", [MultiprocessTransport, SharedMemoryTransport])
    def test_peer_death_detected_well_inside_recv_timeout(self, cls):
        """Death is EOF, not a timeout: with a 30s receive window a
        SIGKILLed peer must surface in a small fraction of it."""
        transport = cls(2, recv_timeout=30.0)

        def worker(ep, _):
            if ep.rank == 1:
                os.kill(os.getpid(), signal.SIGKILL)
            ep.recv(1, "never")
            return True

        t0 = time.monotonic()
        with pytest.raises(TransportError):
            transport.launch(worker, timeout=60.0)
        assert time.monotonic() - t0 < 10.0
