"""Transport conformance suite.

One declarative scenario matrix — send/broadcast/allreduce sequences,
the degenerate single-rank case, zero-scalar and self sends, mixed-tag
epochs — runs against all four transports:

* ``SimulatedCommunicator`` replays the metering plane directly (its
  ranks share one process, nothing travels);
* ``LocalTransport`` / ``MultiprocessTransport`` /
  ``SharedMemoryTransport`` execute the same scenario as *m* real
  workers moving real payloads — threads over queues, processes over
  pickling pipes, and processes over zero-copy shared-memory rings
  respectively (every received array is checked against what the
  sender produced, every AllReduce against the true sum).

The assertion that makes the four interchangeable: identical
``pairwise`` byte matrices and identical per-tag byte totals, compared
with ``==`` — byte-for-byte, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sanitizer import ProtocolError
from repro.dist.comm import SimulatedCommunicator
from repro.dist.transport import (
    LocalTransport,
    MultiprocessTransport,
    SharedMemoryTransport,
    TransportError,
    ring_allreduce_scalars,
)

DATA_MOVING = ["local", "multiprocess", "shm"]
TRANSPORT_CLASSES = {
    "local": LocalTransport,
    "multiprocess": MultiprocessTransport,
    "shm": SharedMemoryTransport,
}
from repro.tensor import get_default_dtype

# ----------------------------------------------------------------------
# Scenario matrix: (name, num_parts, ops)
#   ("send", src, dst, n, tag)
#   ("bcast", src, n, tag)
#   ("allreduce", n, tag, algorithm)
# ----------------------------------------------------------------------
SCENARIOS = [
    (
        "p2p_basic", 3,
        [
            ("send", 0, 1, 10, "forward"),
            ("send", 1, 0, 10, "backward"),
            ("send", 2, 0, 3, "forward"),
            ("send", 0, 2, 7, "misc"),
        ],
    ),
    (
        "zero_scalar_and_self_sends", 2,
        [
            ("send", 0, 1, 0, "forward"),
            ("send", 1, 1, 5, "forward"),  # self-send meters nothing
            ("send", 1, 0, 4, "forward"),
            ("bcast", 0, 0, "sample_sync"),
        ],
    ),
    (
        "degenerate_m1", 1,
        [
            ("bcast", 0, 9, "sample_sync"),
            ("allreduce", 11, "reduce", "ring"),
            ("send", 0, 0, 5, "forward"),
        ],
    ),
    (
        "broadcasts", 4,
        [
            ("bcast", 0, 6, "sample_sync"),
            ("bcast", 1, 0, "sample_sync"),
            ("bcast", 2, 13, "sample_sync"),
            ("bcast", 3, 1, "sample_sync"),
        ],
    ),
    (
        "allreduce_ring_uneven", 4,
        [("allreduce", 7, "reduce", "ring"), ("allreduce", 1, "reduce", "ring")],
    ),
    (
        "allreduce_tree", 3,
        [("allreduce", 10, "reduce", "tree"), ("allreduce", 4, "r2", "tree")],
    ),
    (
        "epoch_like", 4,
        [
            ("bcast", 0, 12, "sample_sync"),
            ("bcast", 1, 8, "sample_sync"),
            ("bcast", 2, 0, "sample_sync"),
            ("bcast", 3, 5, "sample_sync"),
            ("send", 1, 0, 96, "forward"),
            ("send", 0, 1, 96, "backward"),
            ("send", 2, 3, 40, "forward"),
            ("send", 3, 2, 40, "backward"),
            ("allreduce", 1234, "reduce", "ring"),
        ],
    ),
]

IDS = [name for name, _, _ in SCENARIOS]


def _payload(src: int, op_index: int, n: int) -> np.ndarray:
    """Deterministic payload so receivers can verify content.

    Built in the library default dtype: the data plane enforces that a
    float payload's width matches what the (default-constructed)
    transports meter, so the suite stays green under REPRO_DTYPE=float32.
    """
    base = (src * 1000.0 + op_index * 17.0) + np.arange(n, dtype=np.float64)
    return base.astype(get_default_dtype())


def _replay_worker(ep, ops):
    """Run one rank's side of the scenario with real payloads."""
    m, rank = ep.num_parts, ep.rank
    for k, op in enumerate(ops):
        kind = op[0]
        if kind == "send":
            _, src, dst, n, tag = op
            if src == dst:
                continue  # simulated meters zero; nothing travels
            if rank == src:
                ep.send(dst, _payload(src, k, n), tag)
            elif rank == dst:
                got = ep.recv(src, tag)
                np.testing.assert_array_equal(got, _payload(src, k, n))
        elif kind == "bcast":
            _, src, n, tag = op
            if rank == src:
                for dst in range(m):
                    if dst != src:
                        ep.send(dst, _payload(src, k, n), tag)
            else:
                got = ep.recv(src, tag)
                np.testing.assert_array_equal(got, _payload(src, k, n))
        elif kind == "allreduce":
            _, n, tag, algorithm = op
            out = ep.allreduce(_payload(rank, k, n), tag, algorithm=algorithm)
            expected = np.sum([_payload(r, k, n) for r in range(m)], axis=0)
            np.testing.assert_allclose(out, expected, atol=1e-9)
        else:  # pragma: no cover - scenario typo guard
            raise ValueError(f"unknown op {kind!r}")
    return ep.meter.snapshot()


def _simulated_ledger(m, ops):
    comm = SimulatedCommunicator(m)
    for op in ops:
        kind = op[0]
        if kind == "send":
            _, src, dst, n, tag = op
            comm.send(src, dst, n, tag)
        elif kind == "bcast":
            _, src, n, tag = op
            comm.broadcast(src, n, tag)
        elif kind == "allreduce":
            _, n, tag, _algorithm = op
            comm.allreduce(n, tag)
    return comm.meter.snapshot()


def _launched_ledger(transport, ops):
    snapshots = transport.launch(
        _replay_worker, [ops] * transport.num_parts, timeout=60.0
    )
    pairwise = np.zeros_like(snapshots[0][0])
    by_tag = {}
    for pw, tags in snapshots:
        pairwise += pw
        for tag, nbytes in tags.items():
            by_tag[tag] = by_tag.get(tag, 0) + nbytes
    return pairwise, by_tag


def _make_transport(kind, m):
    return TRANSPORT_CLASSES[kind](m, recv_timeout=30.0)


@pytest.mark.parametrize("kind", DATA_MOVING)
@pytest.mark.parametrize("name,m,ops", SCENARIOS, ids=IDS)
class TestConformance:
    def test_matches_simulated_byte_for_byte(self, kind, name, m, ops):
        sim_pairwise, sim_tags = _simulated_ledger(m, ops)
        pairwise, by_tag = _launched_ledger(_make_transport(kind, m), ops)
        assert by_tag == sim_tags
        assert (pairwise == sim_pairwise).all()


@pytest.mark.parametrize("name,m,ops", SCENARIOS, ids=IDS)
def test_transport_level_ledger_matches_merged_endpoints(name, m, ops):
    """launch() folds per-rank meters into the transport-level ledger."""
    transport = LocalTransport(m, recv_timeout=30.0)
    _launched_ledger(transport, ops)
    sim_pairwise, sim_tags = _simulated_ledger(m, ops)
    assert transport.meter.by_tag == sim_tags
    assert (transport.pairwise == sim_pairwise).all()


class TestDataPlaneGuards:
    def test_self_send_rejected_on_endpoints(self):
        transport = LocalTransport(2, recv_timeout=5.0)

        def worker(ep, _):
            if ep.rank == 0:
                with pytest.raises(TransportError):
                    ep.send(0, np.zeros(3, dtype=get_default_dtype()), "x")
            return True

        assert transport.launch(worker, timeout=15.0) == [True, True]

    def test_recv_timeout_fails_fast(self):
        transport = LocalTransport(2, recv_timeout=0.2)

        def worker(ep, _):
            if ep.rank == 0:
                ep.recv(1, "never")  # rank 1 sends nothing
            return True

        with pytest.raises(TransportError):
            transport.launch(worker, timeout=15.0)

    def test_worker_exception_propagates(self):
        transport = MultiprocessTransport(2, recv_timeout=10.0)

        def worker(ep, _):
            if ep.rank == 1:
                raise ValueError("boom")
            return True

        with pytest.raises(TransportError, match="boom"):
            transport.launch(worker, timeout=30.0)

    def test_tag_mismatch_detected(self):
        transport = LocalTransport(2, recv_timeout=5.0)

        def worker(ep, _):
            if ep.rank == 0:
                ep.send(1, np.zeros(2, dtype=get_default_dtype()), "a")
            else:
                ep.recv(0, "b")
            return True

        with pytest.raises(TransportError, match="expected tag"):
            transport.launch(worker, timeout=15.0)

    def test_allreduce_bitwise_identical_across_ranks(self):
        transport = LocalTransport(3, recv_timeout=10.0)
        rng = np.random.default_rng(0)
        data = [
            rng.standard_normal(37).astype(get_default_dtype())
            for _ in range(3)
        ]

        def worker(ep, contribution):
            return ep.allreduce(contribution, "reduce")

        results = transport.launch(worker, data, timeout=30.0)
        assert (results[0] == results[1]).all()
        assert (results[0] == results[2]).all()
        atol = 1e-12 if get_default_dtype() == np.float64 else 1e-5
        np.testing.assert_allclose(results[0], np.sum(data, axis=0), atol=atol)

    def test_simulated_has_no_data_plane(self):
        with pytest.raises(NotImplementedError):
            SimulatedCommunicator(2).launch(lambda ep, _: None)


class TestDeadPeerDetection:
    """A dead or dropped peer must surface as TransportError within
    recv_timeout — never a silent hang — on both data-moving
    transports, on the blocking recv path, on the non-blocking
    post_exchange/complete_exchange path, and on the send side (the
    regression: ``exchange``/``_ring_allreduce`` used to join their
    send threads with a timeout and silently abandon them)."""

    @pytest.mark.parametrize("kind", DATA_MOVING)
    def test_peer_exits_before_sending(self, kind):
        transport = TRANSPORT_CLASSES[kind](2, recv_timeout=1.0)

        def worker(ep, _):
            if ep.rank == 1:
                return True  # exits without ever sending
            ep.recv(1, "never")
            return True

        with pytest.raises(TransportError):
            transport.launch(worker, timeout=30.0)

    @pytest.mark.parametrize("kind", DATA_MOVING)
    def test_dead_peer_on_post_exchange_path(self, kind):
        """complete_exchange of a deferred receive from a dead peer
        fails within the receive window, not at the launch deadline."""
        transport = TRANSPORT_CLASSES[kind](2, recv_timeout=1.0)

        def worker(ep, _):
            if ep.rank == 1:
                return True  # never serves the posted exchange
            handle = ep.post_exchange({}, [1], "stale_features")
            ep.complete_exchange(handle)
            return None

        with pytest.raises(TransportError) as excinfo:
            transport.launch(worker, timeout=30.0)
        # rank 0's receive window is the reported failure, not the
        # launch deadline (rank 1 exited fine)
        assert "rank 0" in str(excinfo.value)

    def test_allreduce_with_dead_peer_times_out(self):
        transport = LocalTransport(3, recv_timeout=0.5)

        def worker(ep, contribution):
            if ep.rank == 2:
                return None  # drops out of the collective
            return ep.allreduce(contribution, "reduce")

        data = [np.ones(8, dtype=get_default_dtype())] * 3
        with pytest.raises(TransportError):
            transport.launch(worker, data, timeout=30.0)

    @pytest.mark.parametrize("kind", ["multiprocess", "shm"])
    def test_abandoned_send_raises_not_masks(self, kind):
        """A send the peer never drains must raise once the window
        closes.  Pipes hold ~64KB and the default shm ring 4MB, so a
        multi-megabyte payload to a sleeping peer leaves the sender
        thread alive after its join — previously swallowed, now a
        TransportError."""
        transport = TRANSPORT_CLASSES[kind](2, recv_timeout=1.0)

        def worker(ep, _):
            if ep.rank == 1:
                # Stay alive past rank 0's send window without draining.
                import time as _time

                _time.sleep(3.0)
                return True
            big = np.zeros(1_000_000, dtype=get_default_dtype())
            ep.send(1, big, "clog")  # must raise, not hang or pass
            return True

        with pytest.raises(TransportError, match="in flight|failed to ship"):
            transport.launch(worker, timeout=30.0)

    def test_completed_handle_cannot_be_redeemed_twice(self):
        transport = LocalTransport(2, recv_timeout=5.0)

        def worker(ep, _):
            peer = 1 - ep.rank
            handle = ep.post_exchange(
                {peer: np.arange(3, dtype=get_default_dtype())}, [peer], "x"
            )
            ep.complete_exchange(handle)
            # Under REPRO_SANITIZE=protocol the typestate proxy
            # reports the double-complete first (ProtocolError);
            # unsanitized, the endpoint itself raises TransportError.
            # Either way the message names the double redemption.
            with pytest.raises((TransportError, ProtocolError),
                               match="twice"):
                ep.complete_exchange(handle)
            return True

        assert transport.launch(worker, timeout=15.0) == [True, True]

    @pytest.mark.parametrize("kind", DATA_MOVING)
    def test_blocked_seconds_accumulates_on_recv_wait(self, kind):
        """The measured compute/blocked split: a rank that waits on a
        slow sender accounts that wait in blocked_seconds — including
        time spent spinning on an empty shared-memory ring, which must
        be priced exactly like a pipe poll (blocked_fraction stays
        comparable across transports)."""
        transport = TRANSPORT_CLASSES[kind](2, recv_timeout=10.0)

        def worker(ep, _):
            import time as _time

            if ep.rank == 1:
                _time.sleep(0.3)
                ep.send(0, np.ones(4, dtype=get_default_dtype()), "slow")
                return ep.blocked_seconds
            ep.recv(1, "slow")
            return ep.blocked_seconds

        waited, _ = transport.launch(worker, timeout=30.0)
        assert waited >= 0.25


class TestDtypeConformance:
    """The byte ledger is honest per dtype: an fp32 transport ships fp32
    payloads (no fp64 upcast anywhere on the wire path) and meters
    exactly 4 bytes per scalar; the fp64 default meters 8."""

    def test_default_bytes_per_scalar_derives_from_dtype(self):
        from repro.tensor import get_default_dtype

        expected = np.dtype(get_default_dtype()).itemsize
        assert SimulatedCommunicator(2).bytes_per_scalar == expected
        assert LocalTransport(2).bytes_per_scalar == expected
        assert MultiprocessTransport(2).bytes_per_scalar == expected
        assert SharedMemoryTransport(2).bytes_per_scalar == expected
        for cls in (SimulatedCommunicator, LocalTransport,
                    MultiprocessTransport, SharedMemoryTransport):
            assert cls(2, dtype=np.float32).bytes_per_scalar == 4
            assert cls(2, dtype=np.float64).bytes_per_scalar == 8
            assert cls(2, bytes_per_scalar=2).bytes_per_scalar == 2  # override wins

    @pytest.mark.parametrize("kind", DATA_MOVING)
    @pytest.mark.parametrize("algorithm", ["ring", "tree"])
    def test_fp32_allreduce_preserves_dtype_and_meters_4_bytes(self, kind, algorithm):
        m, n = 3, 37
        transport = TRANSPORT_CLASSES[kind](m, recv_timeout=30.0, dtype=np.float32)

        def worker(ep, contribution):
            out = ep.allreduce(contribution, "reduce", algorithm=algorithm)
            return out, ep.meter.snapshot()

        rng = np.random.default_rng(5)
        data = [rng.standard_normal(n).astype(np.float32) for _ in range(m)]
        results = transport.launch(worker, data, timeout=60.0)
        outs = [r[0] for r in results]
        # fp32 in, fp32 out — and bitwise identical across ranks.
        assert all(o.dtype == np.float32 for o in outs)
        assert (outs[0] == outs[1]).all() and (outs[0] == outs[2]).all()
        np.testing.assert_allclose(
            outs[0], np.sum(data, axis=0, dtype=np.float32), atol=1e-5
        )
        # Each rank meters the ring formula at 4 bytes per scalar.
        per_rank = ring_allreduce_scalars(m, n) * 4
        for _, (pairwise, tags) in results:
            assert tags == {"reduce": per_rank}
        assert transport.total_bytes("reduce") == m * per_rank

    def test_fp32_payload_ships_fp32_through_processes(self):
        """A pickled fp32 payload arrives fp32 — metered == shipped."""
        transport = MultiprocessTransport(2, recv_timeout=30.0, dtype=np.float32)

        def worker(ep, _):
            if ep.rank == 0:
                ep.send(1, np.arange(6, dtype=np.float32), "feat")
                return None
            got = ep.recv(0, "feat")
            return str(got.dtype)

        results = transport.launch(worker, timeout=60.0)
        assert results[1] == "float32"
        assert transport.total_bytes("feat") == 6 * 4

    def test_fp32_ledger_is_half_of_fp64(self):
        ops = SCENARIOS[-1][2]  # the epoch-like scenario
        m = SCENARIOS[-1][1]
        sim64 = SimulatedCommunicator(m, dtype=np.float64)
        sim32 = SimulatedCommunicator(m, dtype=np.float32)
        for comm in (sim64, sim32):
            for op in ops:
                if op[0] == "send":
                    comm.send(*op[1:])
                elif op[0] == "bcast":
                    comm.broadcast(*op[1:])
                else:
                    comm.allreduce(op[1], op[2])
        assert set(sim64._by_tag) == set(sim32._by_tag)
        for tag, nbytes in sim64._by_tag.items():
            assert nbytes == 2 * sim32._by_tag[tag], tag
        assert (sim64.pairwise == 2 * sim32.pairwise).all()

    def test_mismatched_float_payload_rejected(self):
        """Metered == shipped is enforced on the data plane: an fp64
        payload through an fp32-metered transport fails loudly."""
        transport = LocalTransport(2, recv_timeout=5.0, dtype=np.float32)

        def worker(ep, _):
            if ep.rank == 0:
                with pytest.raises(TransportError, match="metered"):
                    ep.send(1, np.zeros(3, dtype=np.float64), "feat")
            return True

        assert transport.launch(worker, timeout=15.0) == [True, True]

    def test_integer_payloads_exempt_from_width_guard(self):
        """Index broadcasts (and integer allreduces) keep working on an
        fp32 transport — only float widths are guarded."""
        transport = LocalTransport(2, recv_timeout=10.0, dtype=np.float32)

        def worker(ep, _):
            ids = np.arange(5, dtype=np.int64)
            if ep.rank == 0:
                ep.send(1, ids, "sample_sync")
            else:
                got = ep.recv(0, "sample_sync")
                np.testing.assert_array_equal(got, ids)
            out = ep.allreduce(np.array([1, 2, 3]), "counts")
            np.testing.assert_allclose(out, [2.0, 4.0, 6.0])
            return True

        assert transport.launch(worker, timeout=20.0) == [True, True]
