"""Transport conformance suite.

One declarative scenario matrix — send/broadcast/allreduce sequences,
the degenerate single-rank case, zero-scalar and self sends, mixed-tag
epochs — runs against all three transports:

* ``SimulatedCommunicator`` replays the metering plane directly (its
  ranks share one process, nothing travels);
* ``LocalTransport`` / ``MultiprocessTransport`` execute the same
  scenario as *m* real workers moving real payloads (every received
  array is checked against what the sender produced, every AllReduce
  against the true sum).

The assertion that makes the three interchangeable: identical
``pairwise`` byte matrices and identical per-tag byte totals, compared
with ``==`` — byte-for-byte, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist.comm import SimulatedCommunicator
from repro.dist.transport import (
    LocalTransport,
    MultiprocessTransport,
    TransportError,
    ring_allreduce_scalars,
)

# ----------------------------------------------------------------------
# Scenario matrix: (name, num_parts, ops)
#   ("send", src, dst, n, tag)
#   ("bcast", src, n, tag)
#   ("allreduce", n, tag, algorithm)
# ----------------------------------------------------------------------
SCENARIOS = [
    (
        "p2p_basic", 3,
        [
            ("send", 0, 1, 10, "forward"),
            ("send", 1, 0, 10, "backward"),
            ("send", 2, 0, 3, "forward"),
            ("send", 0, 2, 7, "misc"),
        ],
    ),
    (
        "zero_scalar_and_self_sends", 2,
        [
            ("send", 0, 1, 0, "forward"),
            ("send", 1, 1, 5, "forward"),  # self-send meters nothing
            ("send", 1, 0, 4, "forward"),
            ("bcast", 0, 0, "sample_sync"),
        ],
    ),
    (
        "degenerate_m1", 1,
        [
            ("bcast", 0, 9, "sample_sync"),
            ("allreduce", 11, "reduce", "ring"),
            ("send", 0, 0, 5, "forward"),
        ],
    ),
    (
        "broadcasts", 4,
        [
            ("bcast", 0, 6, "sample_sync"),
            ("bcast", 1, 0, "sample_sync"),
            ("bcast", 2, 13, "sample_sync"),
            ("bcast", 3, 1, "sample_sync"),
        ],
    ),
    (
        "allreduce_ring_uneven", 4,
        [("allreduce", 7, "reduce", "ring"), ("allreduce", 1, "reduce", "ring")],
    ),
    (
        "allreduce_tree", 3,
        [("allreduce", 10, "reduce", "tree"), ("allreduce", 4, "r2", "tree")],
    ),
    (
        "epoch_like", 4,
        [
            ("bcast", 0, 12, "sample_sync"),
            ("bcast", 1, 8, "sample_sync"),
            ("bcast", 2, 0, "sample_sync"),
            ("bcast", 3, 5, "sample_sync"),
            ("send", 1, 0, 96, "forward"),
            ("send", 0, 1, 96, "backward"),
            ("send", 2, 3, 40, "forward"),
            ("send", 3, 2, 40, "backward"),
            ("allreduce", 1234, "reduce", "ring"),
        ],
    ),
]

IDS = [name for name, _, _ in SCENARIOS]


def _payload(src: int, op_index: int, n: int) -> np.ndarray:
    """Deterministic payload so receivers can verify content."""
    return (src * 1000.0 + op_index * 17.0) + np.arange(n, dtype=np.float64)


def _replay_worker(ep, ops):
    """Run one rank's side of the scenario with real payloads."""
    m, rank = ep.num_parts, ep.rank
    for k, op in enumerate(ops):
        kind = op[0]
        if kind == "send":
            _, src, dst, n, tag = op
            if src == dst:
                continue  # simulated meters zero; nothing travels
            if rank == src:
                ep.send(dst, _payload(src, k, n), tag)
            elif rank == dst:
                got = ep.recv(src, tag)
                np.testing.assert_array_equal(got, _payload(src, k, n))
        elif kind == "bcast":
            _, src, n, tag = op
            if rank == src:
                for dst in range(m):
                    if dst != src:
                        ep.send(dst, _payload(src, k, n), tag)
            else:
                got = ep.recv(src, tag)
                np.testing.assert_array_equal(got, _payload(src, k, n))
        elif kind == "allreduce":
            _, n, tag, algorithm = op
            out = ep.allreduce(_payload(rank, k, n), tag, algorithm=algorithm)
            expected = np.sum([_payload(r, k, n) for r in range(m)], axis=0)
            np.testing.assert_allclose(out, expected, atol=1e-9)
        else:  # pragma: no cover - scenario typo guard
            raise ValueError(f"unknown op {kind!r}")
    return ep.meter.snapshot()


def _simulated_ledger(m, ops):
    comm = SimulatedCommunicator(m)
    for op in ops:
        kind = op[0]
        if kind == "send":
            _, src, dst, n, tag = op
            comm.send(src, dst, n, tag)
        elif kind == "bcast":
            _, src, n, tag = op
            comm.broadcast(src, n, tag)
        elif kind == "allreduce":
            _, n, tag, _algorithm = op
            comm.allreduce(n, tag)
    return comm.meter.snapshot()


def _launched_ledger(transport, ops):
    snapshots = transport.launch(
        _replay_worker, [ops] * transport.num_parts, timeout=60.0
    )
    pairwise = np.zeros_like(snapshots[0][0])
    by_tag = {}
    for pw, tags in snapshots:
        pairwise += pw
        for tag, nbytes in tags.items():
            by_tag[tag] = by_tag.get(tag, 0) + nbytes
    return pairwise, by_tag


def _make_transport(kind, m):
    if kind == "local":
        return LocalTransport(m, recv_timeout=30.0)
    return MultiprocessTransport(m, recv_timeout=30.0)


@pytest.mark.parametrize("kind", ["local", "multiprocess"])
@pytest.mark.parametrize("name,m,ops", SCENARIOS, ids=IDS)
class TestConformance:
    def test_matches_simulated_byte_for_byte(self, kind, name, m, ops):
        sim_pairwise, sim_tags = _simulated_ledger(m, ops)
        pairwise, by_tag = _launched_ledger(_make_transport(kind, m), ops)
        assert by_tag == sim_tags
        assert (pairwise == sim_pairwise).all()


@pytest.mark.parametrize("name,m,ops", SCENARIOS, ids=IDS)
def test_transport_level_ledger_matches_merged_endpoints(name, m, ops):
    """launch() folds per-rank meters into the transport-level ledger."""
    transport = LocalTransport(m, recv_timeout=30.0)
    _launched_ledger(transport, ops)
    sim_pairwise, sim_tags = _simulated_ledger(m, ops)
    assert transport.meter.by_tag == sim_tags
    assert (transport.pairwise == sim_pairwise).all()


class TestDataPlaneGuards:
    def test_self_send_rejected_on_endpoints(self):
        transport = LocalTransport(2, recv_timeout=5.0)

        def worker(ep, _):
            if ep.rank == 0:
                with pytest.raises(TransportError):
                    ep.send(0, np.zeros(3), "x")
            return True

        assert transport.launch(worker, timeout=15.0) == [True, True]

    def test_recv_timeout_fails_fast(self):
        transport = LocalTransport(2, recv_timeout=0.2)

        def worker(ep, _):
            if ep.rank == 0:
                ep.recv(1, "never")  # rank 1 sends nothing
            return True

        with pytest.raises(TransportError):
            transport.launch(worker, timeout=15.0)

    def test_worker_exception_propagates(self):
        transport = MultiprocessTransport(2, recv_timeout=10.0)

        def worker(ep, _):
            if ep.rank == 1:
                raise ValueError("boom")
            return True

        with pytest.raises(TransportError, match="boom"):
            transport.launch(worker, timeout=30.0)

    def test_tag_mismatch_detected(self):
        transport = LocalTransport(2, recv_timeout=5.0)

        def worker(ep, _):
            if ep.rank == 0:
                ep.send(1, np.zeros(2), "a")
            else:
                ep.recv(0, "b")
            return True

        with pytest.raises(TransportError, match="expected tag"):
            transport.launch(worker, timeout=15.0)

    def test_allreduce_bitwise_identical_across_ranks(self):
        transport = LocalTransport(3, recv_timeout=10.0)
        rng = np.random.default_rng(0)
        data = [rng.standard_normal(37) for _ in range(3)]

        def worker(ep, contribution):
            return ep.allreduce(contribution, "reduce")

        results = transport.launch(worker, data, timeout=30.0)
        assert (results[0] == results[1]).all()
        assert (results[0] == results[2]).all()
        np.testing.assert_allclose(results[0], np.sum(data, axis=0), atol=1e-12)

    def test_simulated_has_no_data_plane(self):
        with pytest.raises(NotImplementedError):
            SimulatedCommunicator(2).launch(lambda ep, _: None)
