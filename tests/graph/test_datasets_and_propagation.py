"""Dataset registry + propagation matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    DATASET_SPECS,
    dataset_spec,
    load_dataset,
    mean_aggregation,
    paper_partition_grid,
    row_normalise,
    sym_norm,
)

from ..util import ring_graph


class TestRegistry:
    def test_all_four_datasets_present(self):
        assert set(DATASET_SPECS) == {
            "reddit-sim", "products-sim", "yelp-sim", "papers-sim"
        }

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_spec("imagenet")

    def test_scale_shrinks_n(self):
        full = dataset_spec("reddit-sim")
        half = dataset_spec("reddit-sim", scale=0.5)
        assert half.n == full.n // 2

    def test_scale_floor_keeps_communities_populated(self):
        tiny = dataset_spec("reddit-sim", scale=0.001)
        assert tiny.n >= 4 * tiny.num_communities

    def test_yelp_is_multilabel(self):
        assert DATASET_SPECS["yelp-sim"].multilabel

    def test_products_has_distribution_shift(self):
        assert DATASET_SPECS["products-sim"].test_feature_noise > 0

    def test_partition_grids_match_paper(self):
        assert paper_partition_grid["reddit-sim"] == [2, 4, 8]
        assert paper_partition_grid["products-sim"] == [5, 8, 10]
        assert paper_partition_grid["yelp-sim"] == [3, 6, 10]
        assert paper_partition_grid["papers-sim"] == [192]

    def test_load_dataset_deterministic(self):
        a = load_dataset("yelp-sim", scale=0.05, seed=3)
        b = load_dataset("yelp-sim", scale=0.05, seed=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_reddit_denser_than_products(self):
        # The paper's key density contrast must survive scaling.
        r = dataset_spec("reddit-sim")
        p = dataset_spec("products-sim")
        assert r.avg_degree > 1.5 * p.avg_degree


class TestPropagation:
    def test_mean_rows_sum_to_one(self):
        prop = mean_aggregation(ring_graph(6))
        np.testing.assert_allclose(
            np.asarray(prop.csr.sum(axis=1)).ravel(), np.ones(6)
        )

    def test_mean_isolated_node_zero_row(self):
        adj = sp.csr_matrix((3, 3))
        prop = mean_aggregation(adj)
        assert prop.nnz == 0

    def test_mean_no_self_loops(self):
        prop = mean_aggregation(ring_graph(5))
        assert not prop.csr.diagonal().any()

    def test_sym_norm_has_self_loops(self):
        prop = sym_norm(ring_graph(5))
        assert (prop.csr.diagonal() > 0).all()

    def test_sym_norm_without_self_loops(self):
        prop = sym_norm(ring_graph(5), add_self_loops=False)
        assert not prop.csr.diagonal().any()

    def test_sym_norm_symmetric(self):
        prop = sym_norm(ring_graph(7))
        diff = prop.csr - prop.csr.T
        assert abs(diff).max() < 1e-12

    def test_sym_norm_spectral_radius_at_most_one(self):
        prop = sym_norm(ring_graph(10))
        eigs = np.linalg.eigvalsh(prop.toarray())
        assert eigs.max() <= 1.0 + 1e-9

    def test_row_normalise_zero_rows_stay_zero(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 3.0]]))
        out = row_normalise(m)
        np.testing.assert_allclose(out.toarray(), [[0, 0], [0.25, 0.75]])

    def test_row_normalise_preserves_sparsity(self):
        m = ring_graph(6)
        out = row_normalise(m)
        assert out.nnz == m.nnz
