"""New generator behaviours: community-coherent distribution shift and
the strong-label multilabel scheme."""

import numpy as np
import pytest

from repro.graph.generators import SyntheticSpec, generate_graph


def spec(**kw):
    base = dict(
        n=300, num_communities=5, avg_degree=8.0, homophily=0.8,
        feature_dim=16, feature_signal=0.5, name="t",
    )
    base.update(kw)
    return SyntheticSpec(**base)


class TestCommunityShift:
    def test_zero_shift_is_noop(self):
        a = generate_graph(spec(community_shift=0.0), seed=4)
        b = generate_graph(spec(community_shift=0.0), seed=4)
        np.testing.assert_array_equal(a.features, b.features)

    def test_shift_changes_heldout_only(self):
        # Same seed: the base graph matches; only val/test features move.
        a = generate_graph(spec(community_shift=0.0), seed=4)
        b = generate_graph(spec(community_shift=2.0), seed=4)
        train = a.train_mask
        np.testing.assert_array_equal(a.features[train], b.features[train])
        assert not np.allclose(a.features[~train], b.features[~train])

    def test_shift_is_community_coherent(self):
        # Nodes of the same community share one delta: the pairwise
        # difference of shifted features equals that of the unshifted
        # ones within a community.
        a = generate_graph(spec(community_shift=0.0), seed=4)
        b = generate_graph(spec(community_shift=2.0), seed=4)
        delta = b.features - a.features
        held = ~(a.train_mask)
        # Recover communities from labels (multiclass labels = community).
        for c in range(5):
            rows = delta[held & (a.labels == c)]
            if len(rows) >= 2:
                np.testing.assert_allclose(rows[0], rows[1], atol=1e-12)

    def test_shift_scale_tracks_feature_signal(self):
        lo = generate_graph(spec(community_shift=1.0, feature_signal=0.1), seed=7)
        hi = generate_graph(spec(community_shift=1.0, feature_signal=2.0), seed=7)
        lo0 = generate_graph(spec(community_shift=0.0, feature_signal=0.1), seed=7)
        hi0 = generate_graph(spec(community_shift=0.0, feature_signal=2.0), seed=7)
        d_lo = np.abs(lo.features - lo0.features).mean()
        d_hi = np.abs(hi.features - hi0.features).mean()
        assert d_hi > 5 * d_lo


class TestStrongLabelMultilabel:
    def test_label_matrix_shape_and_dtype(self):
        g = generate_graph(
            spec(multilabel=True, num_labels=12, labels_per_node=3.0), seed=2
        )
        assert g.labels.shape == (300, 12)
        assert set(np.unique(g.labels)) <= {0.0, 1.0}

    def test_mean_active_labels_near_target(self):
        g = generate_graph(
            spec(n=2000, multilabel=True, num_labels=20, labels_per_node=3.0),
            seed=2,
        )
        per_node = g.labels.sum(axis=1).mean()
        # ~3 strong labels at 0.85 + 17 background at 0.05 = ~3.4
        assert 2.5 < per_node < 4.5

    def test_communities_have_distinct_strong_labels(self):
        g = generate_graph(
            spec(n=2000, multilabel=True, num_labels=20, labels_per_node=3.0),
            seed=2,
        )
        # Group nodes by community via the generator's determinism:
        # regenerate the multiclass variant with the same seed to
        # recover community ids.
        ref = generate_graph(spec(n=2000), seed=2)
        rates = np.stack([
            g.labels[ref.labels == c].mean(axis=0) for c in range(5)
        ])
        # Each community has >= 2 labels with activation far above the
        # 5% background rate.
        assert ((rates > 0.5).sum(axis=1) >= 2).all()
        # And communities do not all share one strong set.
        strong_sets = [frozenset(np.flatnonzero(r > 0.5)) for r in rates]
        assert len(set(strong_sets)) > 1

    def test_learnable_above_chance(self, multilabel_graph):
        # The conftest multilabel graph must support non-trivial F1
        # (the old flat-rate scheme capped it near zero).
        from repro.baselines import FullGraphTrainer
        from repro.nn import GraphSAGEModel

        model = GraphSAGEModel(
            multilabel_graph.feature_dim, 16, multilabel_graph.num_classes,
            2, 0.0, np.random.default_rng(0),
        )
        t = FullGraphTrainer(multilabel_graph, model, lr=0.01)
        for _ in range(60):
            t.train_epoch()
        scores = t.evaluate()
        assert scores["test"] > 0.4
