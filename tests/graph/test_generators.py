"""Synthetic graph generation: structure, labels, splits, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.generators import (
    SyntheticSpec,
    generate_graph,
    planted_partition_adjacency,
)


BASE = SyntheticSpec(
    n=300, num_communities=5, avg_degree=8.0, homophily=0.8, feature_dim=8,
)


class TestAdjacency:
    def test_symmetric_binary_no_diag(self):
        rng = np.random.default_rng(0)
        comm = np.arange(100) % 4
        adj = planted_partition_adjacency(rng, 100, comm, 6.0, 0.8, 2.0)
        assert (adj != adj.T).nnz == 0
        assert not adj.diagonal().any()
        assert np.all(adj.data == 1.0)

    def test_target_degree_roughly_met(self):
        rng = np.random.default_rng(0)
        comm = np.arange(500) % 5
        adj = planted_partition_adjacency(rng, 500, comm, 10.0, 0.8, 2.0)
        avg = adj.nnz / 500
        assert 7.0 < avg < 11.0  # dedup losses allowed

    def test_homophily_controls_intra_fraction(self):
        rng = np.random.default_rng(0)
        comm = np.arange(400) % 4
        high = planted_partition_adjacency(rng, 400, comm, 10.0, 0.95, 0.0)
        low = planted_partition_adjacency(
            np.random.default_rng(0), 400, comm, 10.0, 0.3, 0.0
        )

        def intra_frac(adj):
            coo = adj.tocoo()
            return (comm[coo.row] == comm[coo.col]).mean()

        assert intra_frac(high) > intra_frac(low) + 0.3

    def test_degree_exponent_creates_tail(self):
        rng = np.random.default_rng(0)
        comm = np.zeros(500, dtype=int)
        heavy = planted_partition_adjacency(rng, 500, comm, 10.0, 1.0, 1.5)
        flat = planted_partition_adjacency(
            np.random.default_rng(0), 500, comm, 10.0, 1.0, 0.0
        )
        deg_h = np.asarray(heavy.sum(axis=1)).ravel()
        deg_f = np.asarray(flat.sum(axis=1)).ravel()
        assert deg_h.max() > deg_f.max()

    def test_empty_community_rejected(self):
        rng = np.random.default_rng(0)
        comm = np.zeros(10, dtype=int)  # community 1 of 2 empty
        comm_bad = comm.copy()
        with pytest.raises(ValueError):
            planted_partition_adjacency(rng, 10, np.full(10, 1), 4.0, 0.8, 0.0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            planted_partition_adjacency(
                np.random.default_rng(0), 1, np.zeros(1, dtype=int), 2.0, 0.5, 0.0
            )


class TestGenerateGraph:
    def test_deterministic(self):
        a = generate_graph(BASE, seed=1)
        b = generate_graph(BASE, seed=1)
        assert (a.adj != b.adj).nnz == 0
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_graph(BASE, seed=1)
        b = generate_graph(BASE, seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_split_proportions(self):
        from dataclasses import replace

        spec = replace(BASE, train_frac=0.5, val_frac=0.25, test_frac=0.25)
        g = generate_graph(spec, seed=0)
        assert g.train_mask.sum() == 150
        assert g.val_mask.sum() == 75
        assert g.test_mask.sum() == 75

    def test_masks_cover_everything(self):
        g = generate_graph(BASE, seed=0)
        total = g.train_mask | g.val_mask | g.test_mask
        assert total.all()

    def test_labels_match_communities_count(self):
        g = generate_graph(BASE, seed=0)
        assert g.num_classes == BASE.num_communities

    def test_multilabel(self):
        from dataclasses import replace

        spec = replace(BASE, multilabel=True, num_labels=10, labels_per_node=3.0)
        g = generate_graph(spec, seed=0)
        assert g.multilabel
        assert g.labels.shape == (300, 10)
        assert set(np.unique(g.labels)) <= {0.0, 1.0}

    def test_features_carry_community_signal(self):
        from dataclasses import replace

        spec = replace(BASE, feature_signal=3.0)
        g = generate_graph(spec, seed=0)
        # Same-class feature centroids should be far from global mean.
        centroids = np.stack(
            [g.features[g.labels == c].mean(axis=0) for c in range(g.num_classes)]
        )
        assert np.linalg.norm(centroids - g.features.mean(axis=0), axis=1).mean() > 1.0

    def test_test_feature_noise_applied(self):
        from dataclasses import replace

        clean = generate_graph(BASE, seed=0)
        noisy = generate_graph(replace(BASE, test_feature_noise=2.0), seed=0)
        held = noisy.val_mask | noisy.test_mask
        # Train features identical, held-out features perturbed.
        np.testing.assert_array_equal(
            clean.features[clean.train_mask], noisy.features[noisy.train_mask]
        )
        assert not np.allclose(clean.features[held], noisy.features[held])

    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_always_valid_graph(self, seed):
        g = generate_graph(BASE, seed=seed)
        g.validate()
