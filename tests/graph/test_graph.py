"""Graph container invariants and operations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import Graph

from ..util import ring_graph


def make_graph(n=8):
    adj = ring_graph(n)
    return Graph(
        adj=adj,
        features=np.random.rand(n, 3),
        labels=np.arange(n) % 2,
        train_mask=np.arange(n) < n // 2,
        val_mask=(np.arange(n) >= n // 2) & (np.arange(n) < 3 * n // 4),
        test_mask=np.arange(n) >= 3 * n // 4,
        name="ring",
    )


class TestConstruction:
    def test_basic_properties(self):
        g = make_graph(8)
        assert g.num_nodes == 8
        assert g.num_edges == 8  # ring has n undirected edges
        assert g.feature_dim == 3
        assert g.num_classes == 2

    def test_avg_degree(self):
        assert make_graph(8).avg_degree == pytest.approx(2.0)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            Graph(
                adj=sp.csr_matrix(np.ones((2, 3))),
                features=np.zeros((2, 1)),
                labels=np.zeros(2, dtype=int),
                train_mask=np.ones(2, bool),
                val_mask=np.zeros(2, bool),
                test_mask=np.zeros(2, bool),
            )

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(
                adj=ring_graph(4),
                features=np.zeros((5, 2)),
                labels=np.zeros(4, dtype=int),
                train_mask=np.ones(4, bool),
                val_mask=np.zeros(4, bool),
                test_mask=np.zeros(4, bool),
            )

    def test_overlapping_masks_rejected(self):
        with pytest.raises(ValueError):
            Graph(
                adj=ring_graph(4),
                features=np.zeros((4, 2)),
                labels=np.zeros(4, dtype=int),
                train_mask=np.ones(4, bool),
                val_mask=np.ones(4, bool),
                test_mask=np.zeros(4, bool),
            )

    def test_wrong_mask_shape_rejected(self):
        with pytest.raises(ValueError):
            Graph(
                adj=ring_graph(4),
                features=np.zeros((4, 2)),
                labels=np.zeros(4, dtype=int),
                train_mask=np.ones(3, bool),
                val_mask=np.zeros(4, bool),
                test_mask=np.zeros(4, bool),
            )


class TestAccessors:
    def test_neighbors(self):
        g = make_graph(6)
        np.testing.assert_array_equal(np.sort(g.neighbors(0)), [1, 5])

    def test_edge_list_symmetric(self):
        g = make_graph(6)
        src, dst = g.edge_list()
        assert len(src) == 2 * g.num_edges
        pairs = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_degrees(self):
        g = make_graph(5)
        np.testing.assert_array_equal(g.degrees(), np.full(5, 2))

    def test_multilabel_num_classes(self):
        n = 4
        g = Graph(
            adj=ring_graph(n),
            features=np.zeros((n, 2)),
            labels=np.zeros((n, 7)),
            train_mask=np.ones(n, bool),
            val_mask=np.zeros(n, bool),
            test_mask=np.zeros(n, bool),
            multilabel=True,
        )
        assert g.num_classes == 7


class TestSubgraph:
    def test_node_induced(self):
        g = make_graph(8)
        sub = g.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # chain 0-1-2

    def test_masks_sliced(self):
        g = make_graph(8)
        sub = g.subgraph(np.array([0, 7]))
        assert sub.train_mask[0] and not sub.train_mask[1]

    def test_validate_passes(self):
        make_graph(8).validate()

    def test_validate_catches_asymmetry(self):
        g = make_graph(4)
        bad = g.adj.tolil()
        bad[0, 2] = 1.0  # one direction only
        g.adj = bad.tocsr()
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_catches_self_loop(self):
        g = make_graph(4)
        bad = g.adj.tolil()
        bad[1, 1] = 1.0
        g.adj = bad.tocsr()
        with pytest.raises(ValueError):
            g.validate()

    def test_repr(self):
        assert "ring" in repr(make_graph(4))
