"""Graph npz serialisation: round-trips and failure modes."""

import numpy as np
import pytest

from repro.graph import load_graph, save_graph


class TestRoundTrip:
    def test_multiclass_roundtrip(self, small_graph, tmp_path):
        path = save_graph(str(tmp_path / "g"), small_graph)
        assert path.endswith(".npz")
        back = load_graph(path)
        assert (back.adj != small_graph.adj).nnz == 0
        np.testing.assert_array_equal(back.features, small_graph.features)
        np.testing.assert_array_equal(back.labels, small_graph.labels)
        np.testing.assert_array_equal(back.train_mask, small_graph.train_mask)
        assert back.name == small_graph.name
        assert not back.multilabel

    def test_multilabel_roundtrip(self, multilabel_graph, tmp_path):
        path = save_graph(str(tmp_path / "ml"), multilabel_graph)
        back = load_graph(path)
        assert back.multilabel
        np.testing.assert_array_equal(back.labels, multilabel_graph.labels)

    def test_extension_optional_on_load(self, small_graph, tmp_path):
        save_graph(str(tmp_path / "g"), small_graph)
        back = load_graph(str(tmp_path / "g"))  # no .npz suffix
        assert back.num_nodes == small_graph.num_nodes

    def test_loaded_graph_trains(self, small_graph, tmp_path):
        from repro.core import BoundaryNodeSampler, DistributedTrainer
        from repro.nn import GraphSAGEModel
        from repro.partition import partition_graph

        save_graph(str(tmp_path / "g"), small_graph)
        g = load_graph(str(tmp_path / "g"))
        part = partition_graph(g, 3, method="metis", seed=0)
        model = GraphSAGEModel(
            g.feature_dim, 16, g.num_classes, 2, 0.0, np.random.default_rng(0)
        )
        t = DistributedTrainer(g, part, model, BoundaryNodeSampler(0.5), lr=0.01)
        h = t.train(8)
        assert h.loss[-1] < h.loss[0]


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(str(tmp_path / "absent"))

    def test_version_mismatch(self, small_graph, tmp_path):
        import numpy as np

        path = save_graph(str(tmp_path / "g"), small_graph)
        with np.load(path) as a:
            arrays = {k: a[k] for k in a.files}
        arrays["version"] = np.array(999)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)

    def test_no_tmp_file_left_behind(self, small_graph, tmp_path):
        save_graph(str(tmp_path / "g"), small_graph)
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert not leftovers
