"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import FullGraphTrainer
from repro.core import (
    BoundaryNodeSampler,
    DistributedTrainer,
    FullBoundarySampler,
    PartitionRuntime,
)
from repro.graph import Graph
from repro.nn import GraphSAGEModel
from repro.partition import PartitionResult, partition_graph

from ..util import ring_graph


def graph_with_isolated_nodes(n=24, isolated=4):
    """Ring plus `isolated` degree-zero nodes appended."""
    base = ring_graph(n - isolated)
    adj = sp.lil_matrix((n, n))
    adj[: n - isolated, : n - isolated] = base
    rng = np.random.default_rng(0)
    return Graph(
        adj=adj.tocsr(),
        features=rng.normal(size=(n, 6)),
        labels=np.arange(n) % 3,
        train_mask=np.arange(n) % 2 == 0,
        val_mask=np.arange(n) % 4 == 1,
        test_mask=np.arange(n) % 4 == 3,
        name="ring+isolated",
    )


def make_model(graph, seed=0):
    return GraphSAGEModel(
        graph.feature_dim, 8, graph.num_classes, 2, 0.0,
        np.random.default_rng(seed),
    )


class TestIsolatedNodes:
    def test_full_graph_trains(self):
        g = graph_with_isolated_nodes()
        t = FullGraphTrainer(g, make_model(g))
        assert np.isfinite(t.train_epoch())

    def test_distributed_trains(self):
        g = graph_with_isolated_nodes()
        part = partition_graph(g, 3, method="random", seed=0)
        t = DistributedTrainer(g, part, make_model(g), BoundaryNodeSampler(0.5))
        assert np.isfinite(t.train_epoch())

    def test_isolated_node_aggregation_is_zero(self):
        from repro.graph.propagation import mean_aggregation

        g = graph_with_isolated_nodes()
        prop = mean_aggregation(g.adj)
        # Isolated rows aggregate to zero (the SAGE self-term still
        # carries the node's own feature).
        assert prop.csr[-1].nnz == 0


class TestDegeneratePartitions:
    def test_rank_without_train_nodes(self):
        """Loss must skip partitions that hold no training nodes."""
        n = 20
        g = Graph(
            adj=ring_graph(n),
            features=np.random.default_rng(0).normal(size=(n, 4)),
            labels=np.arange(n) % 2,
            # All training nodes in the first half.
            train_mask=np.arange(n) < 8,
            val_mask=(np.arange(n) >= 8) & (np.arange(n) < 14),
            test_mask=np.arange(n) >= 14,
        )
        # Second partition owns only non-train nodes.
        assignment = (np.arange(n) >= 10).astype(np.int64)
        part = PartitionResult(assignment, 2)
        t = DistributedTrainer(g, part, make_model(g), FullBoundarySampler())
        assert np.isfinite(t.train_epoch())

    def test_no_train_nodes_anywhere_raises(self):
        n = 12
        g = Graph(
            adj=ring_graph(n),
            features=np.zeros((n, 4)),
            labels=np.arange(n) % 2,
            train_mask=np.zeros(n, dtype=bool),
            val_mask=np.ones(n, dtype=bool),
            test_mask=np.zeros(n, dtype=bool),
        )
        part = PartitionResult(np.arange(n) % 2, 2)
        t = DistributedTrainer(g, part, make_model(g), FullBoundarySampler())
        with pytest.raises(RuntimeError):
            t.train_epoch()

    def test_single_partition_equals_full_graph(self, small_graph):
        part = PartitionResult(np.zeros(small_graph.num_nodes, dtype=np.int64), 1)
        m1 = make_model(small_graph, seed=5)
        m2 = make_model(small_graph, seed=6)
        m2.load_state_dict(m1.state_dict())
        t_dist = DistributedTrainer(small_graph, part, m1, FullBoundarySampler())
        t_full = FullGraphTrainer(small_graph, m2)
        assert abs(t_dist.train_epoch() - t_full.train_epoch()) < 1e-10
        assert t_dist.comm.total_bytes("forward") == 0

    def test_partition_of_singletons(self):
        """k == n: every node is its own partition."""
        n = 8
        g = Graph(
            adj=ring_graph(n),
            features=np.random.default_rng(1).normal(size=(n, 4)),
            labels=np.arange(n) % 2,
            train_mask=np.ones(n, dtype=bool),
            val_mask=np.zeros(n, dtype=bool),
            test_mask=np.zeros(n, dtype=bool),
        )
        part = PartitionResult(np.arange(n, dtype=np.int64), n)
        runtime = PartitionRuntime(g, part)
        runtime.validate()
        assert runtime.total_boundary() == 2 * n  # each node needs both neighbours
        t = DistributedTrainer(g, part, make_model(g), FullBoundarySampler())
        assert np.isfinite(t.train_epoch())


class TestSamplerEdgeCases:
    def test_rank_with_empty_boundary(self, small_graph):
        """A partition with no boundary (whole graph) samples trivially."""
        part = PartitionResult(np.zeros(small_graph.num_nodes, dtype=np.int64), 1)
        runtime = PartitionRuntime(small_graph, part)
        plan = BoundaryNodeSampler(0.5).plan(
            runtime.ranks[0], np.random.default_rng(0)
        )
        assert plan.kept_positions.size == 0
        assert plan.prop.shape == (small_graph.num_nodes, small_graph.num_nodes)

    def test_all_boundary_dropped_by_chance(self, small_graph, small_partition):
        """p so small every node is dropped: training must still run."""
        t = DistributedTrainer(
            small_graph, small_partition,
            make_model(small_graph), BoundaryNodeSampler(1e-9),
        )
        assert np.isfinite(t.train_epoch())
        assert t.comm.total_bytes("forward") == 0


class TestNumericalRobustness:
    def test_huge_feature_values(self, small_partition, small_graph):
        g = Graph(
            adj=small_graph.adj,
            features=small_graph.features * 1e6,
            labels=small_graph.labels,
            train_mask=small_graph.train_mask,
            val_mask=small_graph.val_mask,
            test_mask=small_graph.test_mask,
        )
        t = DistributedTrainer(g, small_partition, make_model(g), FullBoundarySampler())
        assert np.isfinite(t.train_epoch())

    def test_zero_features(self, small_partition, small_graph):
        g = Graph(
            adj=small_graph.adj,
            features=np.zeros_like(small_graph.features),
            labels=small_graph.labels,
            train_mask=small_graph.train_mask,
            val_mask=small_graph.val_mask,
            test_mask=small_graph.test_mask,
        )
        t = DistributedTrainer(g, small_partition, make_model(g), FullBoundarySampler())
        loss = t.train_epoch()
        # Uniform logits: loss starts at ~log(num_classes).
        assert loss == pytest.approx(np.log(g.num_classes), rel=0.05)
