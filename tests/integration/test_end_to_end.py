"""Cross-module integration: the paper's claims as executable checks."""

import numpy as np
import pytest

from repro.baselines import FullGraphTrainer
from repro.core import (
    BoundaryEdgeSampler,
    BoundaryNodeSampler,
    DistributedTrainer,
    DropEdgeSampler,
    FullBoundarySampler,
)
from repro.dist import RTX2080TI_CLUSTER, bns_epoch_model, build_workload
from repro.nn import GraphSAGEModel
from repro.partition import communication_volume, partition_graph, partition_stats


def fresh_model(graph, seed=11, hidden=32, layers=2, dropout=0.2):
    return GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, layers, dropout,
        np.random.default_rng(seed),
    )


class TestPaperClaims:
    def test_metis_objective_volume_beats_cut_on_boundary_nodes(self, small_graph):
        """Section 3.2 Goal-1: optimising comm volume yields fewer
        boundary nodes than optimising edge cut (usually; assert ≤ with
        slack since both heuristics are randomised)."""
        vol = partition_graph(small_graph, 4, method="metis", objective="volume")
        cut = partition_graph(small_graph, 4, method="metis", objective="cut")
        v_vol = communication_volume(small_graph.adj, vol)
        v_cut = communication_volume(small_graph.adj, cut)
        assert v_vol <= v_cut * 1.1

    def test_comm_traffic_proportional_to_p(self, small_graph):
        """Eq. 3 under sampling: E[traffic] = p × full traffic."""
        part = partition_graph(small_graph, 4, method="metis", seed=0)
        base = None
        for p in (1.0, 0.5, 0.25):
            model = fresh_model(small_graph)
            sampler = FullBoundarySampler() if p == 1.0 else BoundaryNodeSampler(p)
            t = DistributedTrainer(small_graph, part, model, sampler, seed=1)
            fwd = 0
            for _ in range(5):
                t.train_epoch()
                fwd += t.comm.total_bytes("forward")
            fwd /= 5
            if base is None:
                base = fwd
            else:
                assert fwd / base == pytest.approx(p, rel=0.25)

    def test_bes_communicates_more_than_bns_at_matched_edge_drop(self, small_graph):
        """Table 9's core claim, measured on real metered traffic."""
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        q = 0.1
        t_bns = DistributedTrainer(
            small_graph, part, fresh_model(small_graph), BoundaryNodeSampler(q), seed=0
        )
        t_bes = DistributedTrainer(
            small_graph, part, fresh_model(small_graph, seed=12),
            BoundaryEdgeSampler(q), seed=0,
        )
        bns_fwd = bes_fwd = 0
        for _ in range(5):
            t_bns.train_epoch()
            t_bes.train_epoch()
            bns_fwd += t_bns.comm.total_bytes("forward")
            bes_fwd += t_bes.comm.total_bytes("forward")
        assert bes_fwd > 1.5 * bns_fwd

    def test_dropedge_does_not_cut_traffic_much(self, small_graph):
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        t_full = DistributedTrainer(
            small_graph, part, fresh_model(small_graph), FullBoundarySampler()
        )
        t_de = DistributedTrainer(
            small_graph, part, fresh_model(small_graph, seed=12),
            DropEdgeSampler(0.5), seed=0,
        )
        t_full.train_epoch()
        t_de.train_epoch()
        # Dropping half the edges keeps well over half the node traffic.
        ratio = t_de.comm.total_bytes("forward") / t_full.comm.total_bytes("forward")
        assert ratio > 0.6

    def test_memory_imbalance_shrinks_with_p(self, small_graph):
        """Fig. 8: sampling compresses the per-partition memory spread."""
        from repro.bench.harness import BENCH_CONFIGS
        from repro.dist import MemoryModel
        from repro.nn.models import layer_dims

        part = partition_graph(small_graph, 4, method="random", seed=0)
        stats = partition_stats(small_graph.adj, part)
        dims = [small_graph.feature_dim, 32, small_graph.num_classes]
        mm = MemoryModel()

        def spread(p):
            mem = mm.per_partition_bytes(
                stats.inner_sizes, stats.boundary_sizes * p, dims
            )
            return mem.max() / mem.min()

        assert spread(0.01) < spread(1.0)

    def test_modeled_throughput_improves_with_p_and_partitions(self, small_graph):
        """Fig. 4's scaling: BNS gains grow with the partition count."""
        dims = [small_graph.feature_dim, 32, 32, small_graph.num_classes]
        speedups = []
        for k in (2, 4):
            part = partition_graph(small_graph, k, method="metis", seed=0)
            w = build_workload(small_graph, part, dims, 50000)
            t1 = bns_epoch_model(w, RTX2080TI_CLUSTER, 1.0).total
            t01 = bns_epoch_model(w, RTX2080TI_CLUSTER, 0.01).total
            speedups.append(t1 / t01)
        assert speedups[1] > speedups[0] * 0.9  # non-decreasing (slack for noise)

    def test_sampled_training_reaches_full_accuracy_ballpark(self, small_graph):
        """Table 4's claim at test scale: p=0.5 within a few points of
        the full-graph score, and p=0 the worst."""
        part = partition_graph(small_graph, 4, method="metis", seed=0)
        scores = {}
        for p in (1.0, 0.5, 0.0):
            model = fresh_model(small_graph, hidden=32)
            sampler = FullBoundarySampler() if p == 1.0 else BoundaryNodeSampler(p)
            t = DistributedTrainer(small_graph, part, model, sampler, lr=0.01, seed=0)
            h = t.train(80, eval_every=20)
            scores[p] = max(h.test_metric)
        assert scores[0.5] > scores[1.0] - 0.15
        assert scores[0.0] <= scores[0.5] + 0.02


class TestDeterminism:
    def test_same_seed_same_history(self, small_graph):
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        runs = []
        for _ in range(2):
            model = fresh_model(small_graph)
            t = DistributedTrainer(
                small_graph, part, model, BoundaryNodeSampler(0.3), seed=123
            )
            runs.append(t.train(5).loss)
        np.testing.assert_allclose(runs[0], runs[1])

    def test_different_sampling_seed_different_loss(self, small_graph):
        part = partition_graph(small_graph, 3, method="metis", seed=0)
        losses = []
        for seed in (1, 2):
            model = fresh_model(small_graph)
            t = DistributedTrainer(
                small_graph, part, model, BoundaryNodeSampler(0.3), seed=seed
            )
            t.train(3)
            losses.append(t.history.loss[-1])
        assert losses[0] != losses[1]
