"""Cross-feature integration: the new axes (pipelining, per-partition
rates, spectral partitions, schedulers, checkpoints) compose with the
core Algorithm 1 machinery."""

import numpy as np
import pytest

from repro.core import (
    BoundaryNodeSampler,
    DistributedTrainer,
    PerPartitionSampler,
    PipelinedTrainer,
    balanced_rates,
)
from repro.dist import RTX2080TI_CLUSTER, build_workload
from repro.nn import (
    CosineAnnealingLR,
    GraphSAGEModel,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.models import layer_dims
from repro.partition import partition_graph


def make_model(graph, seed=0, hidden=16):
    return GraphSAGEModel(
        graph.feature_dim, hidden, graph.num_classes, 2, 0.0,
        np.random.default_rng(seed),
    )


class TestPipelinePlusPerPartition:
    def test_trains_and_meters(self, small_graph, small_partition):
        dims = layer_dims(small_graph.feature_dim, 16, small_graph.num_classes, 2)
        workload = build_workload(
            small_graph, small_partition, dims, model_params=100
        )
        rates = balanced_rates(workload, p_target=0.2)
        t = PipelinedTrainer(
            small_graph, small_partition, make_model(small_graph),
            PerPartitionSampler(rates), lr=0.01, cluster=RTX2080TI_CLUSTER,
        )
        h = t.train(12)
        assert h.loss[-1] < h.loss[0]
        assert all(b.overlap_communication for b in h.modeled)

    def test_traffic_scales_with_rates(self, small_graph, small_partition):
        m = small_partition.num_parts
        low = PerPartitionSampler([0.1] * m)
        high = PerPartitionSampler([0.9] * m)
        bytes_ = {}
        for name, sampler in (("low", low), ("high", high)):
            t = DistributedTrainer(
                small_graph, small_partition, make_model(small_graph),
                sampler, lr=0.01, seed=3,
            )
            t.train(3)
            bytes_[name] = np.mean(t.history.comm_bytes)
        assert bytes_["low"] < bytes_["high"]


class TestSpectralPartitionTraining:
    def test_pipelined_on_spectral(self, small_graph):
        part = partition_graph(small_graph, 3, method="spectral", seed=0)
        t = PipelinedTrainer(
            small_graph, part, make_model(small_graph),
            BoundaryNodeSampler(0.3), lr=0.01,
        )
        h = t.train(20)
        assert h.loss[-1] < h.loss[0]

    def test_same_model_each_partitioner_comparable(self, small_graph):
        scores = {}
        for method in ("metis", "spectral", "random"):
            part = partition_graph(small_graph, 3, method=method, seed=0)
            t = DistributedTrainer(
                small_graph, part, make_model(small_graph, seed=1),
                BoundaryNodeSampler(0.5), lr=0.01, seed=0,
            )
            t.train(40)
            scores[method] = t.evaluate()["test"]
        # BNS is partitioner-agnostic (Table 7): all three train to
        # something non-trivial and within a band of each other.
        assert min(scores.values()) > 0.3
        assert max(scores.values()) - min(scores.values()) < 0.35


class TestCheckpointMidDistributedRun:
    def test_resume_distributed_training(self, small_graph, small_partition, tmp_path):
        model = make_model(small_graph, seed=5)
        t1 = DistributedTrainer(
            small_graph, small_partition, model, BoundaryNodeSampler(0.5),
            lr=0.01, seed=0,
        )
        t1.train(5)
        path = save_checkpoint(str(tmp_path / "mid"), model, t1.optimizer, epoch=5)

        model2 = make_model(small_graph, seed=9)
        t2 = DistributedTrainer(
            small_graph, small_partition, model2, BoundaryNodeSampler(0.5),
            lr=0.01, seed=0,
        )
        start = load_checkpoint(path, model2, t2.optimizer)
        assert start == 5
        h = t2.train(5)
        assert np.isfinite(h.loss).all()

    def test_scheduler_with_pipelined_trainer(self, small_graph, small_partition):
        t = PipelinedTrainer(
            small_graph, small_partition, make_model(small_graph), lr=0.01
        )
        sched = CosineAnnealingLR(t.optimizer, t_max=15)
        t.train(15, scheduler=sched)
        # After 15 steps last_epoch = 14, so lr ~ base*(1+cos(14pi/15))/2.
        assert t.optimizer.lr < 2e-4
