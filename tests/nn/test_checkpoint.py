"""Checkpointing: round-trips, optimiser state, and failure modes."""

import numpy as np
import pytest

from repro.nn import Adam, GraphSAGEModel, SGD, load_checkpoint, save_checkpoint
from repro.nn.checkpoint import load_optimizer_state, optimizer_state
from repro.tensor import Tensor


def make_model(seed=0):
    return GraphSAGEModel(8, 16, 4, num_layers=2, dropout=0.0,
                          rng=np.random.default_rng(seed))


def train_steps(model, opt, steps=3, seed=1):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(5, 8))
    for _ in range(steps):
        opt.zero_grad()
        out = None
        for p in model.parameters():
            s = (p * p).sum()
            out = s if out is None else out + s
        out.backward()
        opt.step()


class TestRoundTrip:
    def test_model_roundtrip(self, tmp_path):
        m1, m2 = make_model(0), make_model(1)
        path = save_checkpoint(str(tmp_path / "ck"), m1, epoch=7)
        assert path.endswith(".npz")
        epoch = load_checkpoint(path, m2)
        assert epoch == 7
        for a, b in zip(m1.parameters(), m2.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_adam_state_roundtrip(self, tmp_path):
        m1 = make_model(0)
        opt1 = Adam(m1.parameters(), lr=0.05)
        train_steps(m1, opt1)
        save_checkpoint(str(tmp_path / "ck"), m1, opt1, epoch=3)

        m2 = make_model(1)
        opt2 = Adam(m2.parameters(), lr=0.9)
        load_checkpoint(str(tmp_path / "ck"), m2, opt2)
        assert opt2.lr == pytest.approx(0.05)
        assert opt2._t == opt1._t
        for a, b in zip(opt1._m, opt2._m):
            np.testing.assert_array_equal(a, b)

    def test_resumed_training_matches_uninterrupted(self, tmp_path):
        # Train 6 steps straight vs 3 steps + checkpoint + 3 steps.
        m_ref = make_model(0)
        opt_ref = Adam(m_ref.parameters(), lr=0.05)
        train_steps(m_ref, opt_ref, steps=6)

        m_a = make_model(0)
        opt_a = Adam(m_a.parameters(), lr=0.05)
        train_steps(m_a, opt_a, steps=3)
        save_checkpoint(str(tmp_path / "mid"), m_a, opt_a, epoch=3)

        m_b = make_model(2)
        opt_b = Adam(m_b.parameters(), lr=0.05)
        load_checkpoint(str(tmp_path / "mid"), m_b, opt_b)
        train_steps(m_b, opt_b, steps=3)

        for a, b in zip(m_ref.parameters(), m_b.parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_sgd_momentum_roundtrip(self, tmp_path):
        m1 = make_model(0)
        opt1 = SGD(m1.parameters(), lr=0.01, momentum=0.9)
        train_steps(m1, opt1)
        save_checkpoint(str(tmp_path / "ck"), m1, opt1)
        m2 = make_model(1)
        opt2 = SGD(m2.parameters(), lr=0.5, momentum=0.9)
        load_checkpoint(str(tmp_path / "ck"), m2, opt2)
        for a, b in zip(opt1._velocity, opt2._velocity):
            np.testing.assert_array_equal(a, b)


class TestFailureModes:
    def test_mismatched_architecture_rejected(self, tmp_path):
        m1 = make_model(0)
        save_checkpoint(str(tmp_path / "ck"), m1)
        other = GraphSAGEModel(8, 32, 4, num_layers=2, dropout=0.0,
                               rng=np.random.default_rng(0))
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(str(tmp_path / "ck"), other)

    def test_loading_optimizer_from_model_only_checkpoint(self, tmp_path):
        m1 = make_model(0)
        save_checkpoint(str(tmp_path / "ck"), m1)
        m2 = make_model(1)
        opt = Adam(m2.parameters(), lr=0.1)
        with pytest.raises(KeyError):
            load_checkpoint(str(tmp_path / "ck"), m2, opt)

    def test_cross_optimizer_kind_rejected(self, tmp_path):
        m1 = make_model(0)
        adam = Adam(m1.parameters(), lr=0.1)
        train_steps(m1, adam)
        save_checkpoint(str(tmp_path / "ck"), m1, adam)
        m2 = make_model(1)
        sgd = SGD(m2.parameters(), lr=0.1, momentum=0.9)
        with pytest.raises(TypeError):
            load_checkpoint(str(tmp_path / "ck"), m2, sgd)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(str(tmp_path / "absent"), make_model())

    def test_unsupported_optimizer_type(self):
        class WeirdOpt:
            lr = 0.1

        with pytest.raises(TypeError):
            optimizer_state(WeirdOpt())


class TestStateHelpers:
    def test_fresh_optimizer_state_has_no_buffers(self):
        m = make_model(0)
        opt = Adam(m.parameters(), lr=0.1)
        state = optimizer_state(opt)
        assert all(k.startswith("__meta__/") for k in state)

    def test_partial_buffers_survive(self):
        # Only some parameters have been stepped (grads on a subset).
        m = make_model(0)
        opt = Adam(m.parameters(), lr=0.1)
        p0 = opt.params[0]
        p0.zero_grad()
        loss = (p0 * p0).sum()
        loss.backward()
        opt.step()
        state = optimizer_state(opt)
        opt2 = Adam(make_model(1).parameters(), lr=0.1)
        load_optimizer_state(opt2, state)
        np.testing.assert_array_equal(opt2._m[0], opt._m[0])
        assert opt2._m[1] is None


class TestDtypeRoundTrip:
    """Loading across precisions must cast, not silently mix (fp64
    checkpoint into an fp32 model used to leave fp64 params/moments)."""

    def _model32(self, seed=0):
        return GraphSAGEModel(8, 16, 4, num_layers=2, dropout=0.0,
                              rng=np.random.default_rng(seed), dtype="float32")

    def test_meta_records_dtype(self, tmp_path):
        path = save_checkpoint(str(tmp_path / "ck64"), make_model(0))
        with np.load(path, allow_pickle=False) as archive:
            assert str(archive["__meta__/dtype"]) == "float64"
        path32 = save_checkpoint(str(tmp_path / "ck32"), self._model32())
        with np.load(path32, allow_pickle=False) as archive:
            assert str(archive["__meta__/dtype"]) == "float32"

    def test_fp64_checkpoint_into_fp32_model(self, tmp_path):
        m64 = make_model(0)
        opt64 = Adam(m64.parameters(), lr=0.01)
        train_steps(m64, opt64)
        path = save_checkpoint(str(tmp_path / "ck"), m64, opt64, epoch=3)

        m32 = self._model32(seed=9)
        opt32 = Adam(m32.parameters(), lr=0.5)
        assert load_checkpoint(path, m32, opt32) == 3
        for p in m32.parameters():
            assert p.data.dtype == np.float32
        for m, v in zip(opt32._m, opt32._v):
            assert m is None or m.dtype == np.float32
            assert v is None or v.dtype == np.float32
        # Values survive the cast (to fp32 resolution).
        for a, b in zip(m64.parameters(), m32.parameters()):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)
        # And the next step stays fp32 end to end.
        train_steps(m32, opt32, steps=1)
        for p in m32.parameters():
            assert p.data.dtype == np.float32
            assert p.grad is None or p.grad.dtype == np.float32

    def test_fp32_checkpoint_into_fp64_model(self, tmp_path):
        m32 = self._model32(0)
        opt32 = SGD(m32.parameters(), lr=0.01, momentum=0.9)
        train_steps(m32, opt32)
        path = save_checkpoint(str(tmp_path / "ck"), m32, opt32)
        m64, opt64 = make_model(1), None
        opt64 = SGD(m64.parameters(), lr=0.01, momentum=0.9)
        load_checkpoint(path, m64, opt64)
        for p in m64.parameters():
            assert p.data.dtype == np.float64
        for vel in opt64._velocity:
            assert vel is None or vel.dtype == np.float64
