"""SAGE / GCN / GAT layer semantics and gradients."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.propagation import mean_aggregation, sym_norm
from repro.nn import GATLayer, GCNLayer, SAGELayer
from repro.tensor import SparseOp, Tensor

from ..util import ring_graph


def make_rng():
    return np.random.default_rng(0)


class TestSAGELayer:
    def test_output_shape(self):
        layer = SAGELayer(4, 6, make_rng())
        prop = mean_aggregation(ring_graph(5))
        h = Tensor(np.random.rand(5, 4))
        out = layer(prop, h, h)
        assert out.shape == (5, 6)

    def test_mean_aggregation_semantics(self):
        # On a ring, z_v = (h_{v-1} + h_{v+1}) / 2; with identity-ish
        # weights we can verify the aggregation half directly.
        n = 6
        prop = mean_aggregation(ring_graph(n))
        h = np.random.rand(n, 3)
        layer = SAGELayer(3, 2, make_rng(), bias=False)
        out = layer(prop, Tensor(h), Tensor(h))
        z = (np.roll(h, 1, axis=0) + np.roll(h, -1, axis=0)) / 2
        expected = np.hstack([z, h]) @ layer.weight.data
        np.testing.assert_allclose(out.data, expected)

    def test_rectangular_operator(self):
        # Partition-style (n_self, n_all) block with n_all > n_self.
        block = sp.csr_matrix(np.array([[0.5, 0.0, 0.5], [0.0, 1.0, 0.0]]))
        layer = SAGELayer(2, 2, make_rng())
        h_all = Tensor(np.random.rand(3, 2))
        h_self = Tensor(np.random.rand(2, 2))
        out = layer(SparseOp(block), h_all, h_self)
        assert out.shape == (2, 2)

    def test_shape_mismatch_rows(self):
        layer = SAGELayer(2, 2, make_rng())
        prop = SparseOp(sp.eye(3, format="csr"))
        with pytest.raises(ValueError):
            layer(prop, Tensor(np.zeros((3, 2))), Tensor(np.zeros((2, 2))))

    def test_shape_mismatch_cols(self):
        layer = SAGELayer(2, 2, make_rng())
        prop = SparseOp(sp.eye(3, format="csr"))
        with pytest.raises(ValueError):
            layer(prop, Tensor(np.zeros((4, 2))), Tensor(np.zeros((3, 2))))

    def test_gradients_flow_to_weight_and_bias(self):
        layer = SAGELayer(3, 2, make_rng())
        prop = mean_aggregation(ring_graph(4))
        h = Tensor(np.random.rand(4, 3), requires_grad=True)
        layer(prop, h, h).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert h.grad is not None

    def test_flops_positive(self):
        layer = SAGELayer(8, 4, make_rng())
        assert layer.flops(10, 20, 50) > 0


class TestGCNLayer:
    def test_output_shape(self):
        layer = GCNLayer(4, 3, make_rng())
        prop = sym_norm(ring_graph(5))
        out = layer(prop, Tensor(np.random.rand(5, 4)))
        assert out.shape == (5, 3)

    def test_ignores_h_self(self):
        layer = GCNLayer(4, 3, make_rng())
        prop = sym_norm(ring_graph(5))
        h = Tensor(np.random.rand(5, 4))
        a = layer(prop, h, None).data
        b = layer(prop, h, Tensor(np.random.rand(5, 4))).data
        np.testing.assert_array_equal(a, b)

    def test_aggregate_first_vs_transform_first_equal(self):
        # in < out triggers aggregate-first; in > out transform-first.
        # Both orders must produce the same result mathematically.
        prop = sym_norm(ring_graph(6))
        h = np.random.rand(6, 5)
        wide = GCNLayer(5, 8, make_rng(), bias=False)
        manual = prop.csr @ (h @ wide.weight.data)
        np.testing.assert_allclose(wide(prop, Tensor(h)).data, manual, atol=1e-12)
        narrow = GCNLayer(5, 2, make_rng(), bias=False)
        manual = (prop.csr @ h) @ narrow.weight.data
        np.testing.assert_allclose(narrow(prop, Tensor(h)).data, manual, atol=1e-12)

    def test_column_mismatch_raises(self):
        layer = GCNLayer(4, 3, make_rng())
        prop = sym_norm(ring_graph(5))
        with pytest.raises(ValueError):
            layer(prop, Tensor(np.zeros((6, 4))))

    def test_flops_branches(self):
        wide = GCNLayer(16, 4, make_rng())
        narrow = GCNLayer(4, 16, make_rng())
        assert wide.flops(10, 10, 40) > 0
        assert narrow.flops(10, 10, 40) > 0


class TestGATLayer:
    def test_output_shape_single_head(self):
        layer = GATLayer(4, 6, make_rng(), num_heads=1)
        src = np.array([0, 1, 2, 0])
        dst = np.array([1, 0, 0, 2])
        out = layer(Tensor(np.random.rand(3, 4)), src, dst, 3)
        assert out.shape == (3, 6)

    def test_output_shape_multi_head(self):
        layer = GATLayer(4, 6, make_rng(), num_heads=3)
        src = np.array([0, 1])
        dst = np.array([1, 0])
        out = layer(Tensor(np.random.rand(2, 4)), src, dst, 2)
        assert out.shape == (2, 18)

    def test_attention_is_convex_combination(self):
        # With identical source features every attention output equals
        # the (single) projected feature regardless of weights.
        layer = GATLayer(3, 5, make_rng(), num_heads=1)
        h = np.ones((4, 3))
        src = np.array([0, 1, 2])
        dst = np.array([3, 3, 3]) - 3  # all into node 0
        out = layer(Tensor(h), src, dst, 1)
        wh = h[0] @ layer.weight.data
        np.testing.assert_allclose(out.data[0], wh, atol=1e-10)

    def test_mismatched_edges_raise(self):
        layer = GATLayer(3, 2, make_rng())
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 3))), np.array([0]), np.array([0, 1]), 2)

    def test_gradients_flow(self):
        layer = GATLayer(3, 2, make_rng(), num_heads=2)
        h = Tensor(np.random.rand(4, 3), requires_grad=True)
        src = np.array([0, 1, 2, 3, 0])
        dst = np.array([0, 0, 1, 1, 1])
        layer(h, src, dst, 2).sum().backward()
        assert h.grad is not None
        assert layer.att_src.grad is not None
        assert layer.att_dst.grad is not None
        assert layer.weight.grad is not None

    def test_dropped_source_excluded(self):
        # Removing an edge changes the destination's output unless the
        # attention renormalises to the same value; with distinct
        # features removal must alter the result.
        layer = GATLayer(3, 2, make_rng())
        h = Tensor(np.random.rand(3, 3))
        full = layer(h, np.array([1, 2]), np.array([0, 0]), 1).data
        less = layer(h, np.array([1]), np.array([0]), 1).data
        assert not np.allclose(full, less)

    def test_flops_positive(self):
        layer = GATLayer(8, 4, make_rng(), num_heads=2)
        assert layer.flops(10, 20, 60) > 0
