"""Linear/Dropout layers and loss functions."""

import numpy as np
import pytest

from repro.nn import Linear, Dropout
from repro.nn import functional as F
from repro.tensor import Tensor, log_softmax

from ..util import check_gradients


class TestLinear:
    def test_output_shape(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        out = layer(Tensor(np.random.rand(5, 4)))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_array_equal(out.data, np.zeros((2, 3)))

    def test_parameters_registered(self):
        layer = Linear(4, 3, np.random.default_rng(0))
        assert len(layer.parameters()) == 2

    def test_gradient_flows_to_weight(self):
        layer = Linear(2, 2, np.random.default_rng(0))
        layer(Tensor(np.random.rand(3, 2))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_flops_counts_macs(self):
        layer = Linear(10, 20, np.random.default_rng(0))
        assert layer.flops(5) == 2 * 5 * 10 * 20


class TestDropoutLayer:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_eval_passthrough(self):
        d = Dropout(0.9)
        d.eval()
        x = Tensor(np.ones(10))
        assert d(x, np.random.default_rng(0)) is x

    def test_train_drops(self):
        d = Dropout(0.5)
        out = d(Tensor(np.ones(1000)), np.random.default_rng(0))
        assert (out.data == 0).sum() > 300


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_uniform_logits_log_k(self):
        k = 5
        logits = Tensor(np.zeros((3, k)))
        loss = F.cross_entropy(logits, np.array([0, 2, 4]))
        assert loss.item() == pytest.approx(np.log(k))

    def test_reduction_sum_vs_mean(self):
        logits = Tensor(np.random.randn(4, 3))
        labels = np.array([0, 1, 2, 0])
        s = F.cross_entropy(logits, labels, reduction="sum").item()
        m = F.cross_entropy(logits, labels, reduction="mean").item()
        assert s == pytest.approx(4 * m)

    def test_reduction_none_shape(self):
        logits = Tensor(np.random.randn(4, 3))
        out = F.cross_entropy(logits, np.array([0, 1, 2, 0]), reduction="none")
        assert out.shape == (4,)

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]), reduction="bogus")

    def test_gradient(self):
        labels = np.array([0, 2, 1])
        check_gradients(
            lambda a: F.cross_entropy(a, labels), [np.random.randn(3, 3)]
        )

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.random.randn(2, 3), requires_grad=True)
        labels = np.array([1, 0])
        F.cross_entropy(logits, labels, reduction="sum").backward()
        soft = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        onehot = np.eye(3)[labels]
        np.testing.assert_allclose(logits.grad, soft - onehot, atol=1e-12)


class TestNLL:
    def test_matches_cross_entropy(self):
        x = np.random.randn(4, 5)
        labels = np.array([0, 1, 2, 3])
        ce = F.cross_entropy(Tensor(x), labels).item()
        nll = F.nll_loss(log_softmax(Tensor(x)), labels).item()
        assert ce == pytest.approx(nll)


class TestBCE:
    def test_matches_reference(self):
        x = np.random.randn(4, 3)
        t = (np.random.rand(4, 3) > 0.5).astype(float)
        loss = F.bce_with_logits(Tensor(x), t).item()
        p = 1 / (1 + np.exp(-x))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert loss == pytest.approx(ref)

    def test_extreme_logits_stable(self):
        x = Tensor(np.array([[1000.0, -1000.0]]))
        t = np.array([[1.0, 0.0]])
        loss = F.bce_with_logits(x, t).item()
        assert np.isfinite(loss) and loss < 1e-6

    def test_gradient(self):
        t = (np.random.rand(3, 2) > 0.5).astype(float)
        check_gradients(lambda a: F.bce_with_logits(a, t), [np.random.randn(3, 2)])

    def test_gradient_is_sigmoid_minus_target(self):
        x = Tensor(np.random.randn(2, 2), requires_grad=True)
        t = np.array([[1.0, 0.0], [0.0, 1.0]])
        F.bce_with_logits(x, t, reduction="sum").backward()
        np.testing.assert_allclose(x.grad, 1 / (1 + np.exp(-x.data)) - t, atol=1e-12)


class TestMaskedRows:
    def test_selects_masked(self):
        x = Tensor(np.arange(8.0).reshape(4, 2))
        mask = np.array([True, False, True, False])
        out = F.masked_rows(x, mask)
        np.testing.assert_array_equal(out.data, [[0.0, 1.0], [4.0, 5.0]])

    def test_gradient_only_into_masked(self):
        x = Tensor(np.random.rand(4, 2), requires_grad=True)
        mask = np.array([False, True, False, True])
        F.masked_rows(x, mask).sum().backward()
        np.testing.assert_array_equal(x.grad[~mask], 0.0)
        np.testing.assert_array_equal(x.grad[mask], 1.0)
