"""Accuracy and micro-F1 metrics."""

import numpy as np
import pytest

from repro.nn import accuracy, f1_micro_multiclass, f1_micro_multilabel


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_zero(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[2.0, 0.0], [2.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_empty_returns_nan(self):
        assert np.isnan(accuracy(np.zeros((0, 2)), np.zeros(0, dtype=int)))

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros(3, dtype=int))


class TestF1Multilabel:
    def test_perfect(self):
        targets = np.array([[1, 0], [0, 1]])
        logits = np.where(targets, 5.0, -5.0)
        assert f1_micro_multilabel(logits, targets) == 1.0

    def test_all_wrong(self):
        targets = np.array([[1, 0], [0, 1]])
        logits = np.where(targets, -5.0, 5.0)
        assert f1_micro_multilabel(logits, targets) == 0.0

    def test_no_predictions_no_targets(self):
        assert f1_micro_multilabel(np.full((2, 2), -5.0), np.zeros((2, 2))) == 0.0

    def test_known_value(self):
        # 1 TP, 1 FP, 1 FN -> F1 = 2*1/(2*1+1+1) = 0.5
        targets = np.array([[1, 1, 0]])
        logits = np.array([[5.0, -5.0, 5.0]])
        assert f1_micro_multilabel(logits, targets) == pytest.approx(0.5)

    def test_threshold(self):
        targets = np.array([[1.0]])
        logits = np.array([[0.2]])
        assert f1_micro_multilabel(logits, targets, threshold=0.5) == 0.0
        assert f1_micro_multilabel(logits, targets, threshold=0.1) == 1.0


class TestF1Multiclass:
    def test_equals_accuracy(self):
        logits = np.random.randn(20, 4)
        labels = np.random.randint(0, 4, 20)
        assert f1_micro_multiclass(logits, labels) == accuracy(logits, labels)
