"""Macro-F1, confusion matrix and per-class metrics (error-analysis
additions beyond the paper's headline accuracy/micro-F1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.metrics import (
    accuracy,
    confusion_matrix,
    f1_macro_multiclass,
    f1_macro_multilabel,
    f1_micro_multiclass,
    f1_micro_multilabel,
    per_class_accuracy,
)


def one_hot_logits(preds, k):
    logits = np.full((len(preds), k), -1.0)
    logits[np.arange(len(preds)), preds] = 1.0
    return logits


class TestMacroF1Multilabel:
    def test_averages_per_label(self):
        # label 0 perfect (F1=1), label 1 never predicted (F1=0)
        targets = np.array([[1, 1], [1, 1]])
        logits = np.array([[5.0, -5.0], [5.0, -5.0]])
        assert f1_macro_multilabel(logits, targets) == pytest.approx(0.5)

    def test_perfect(self):
        targets = np.array([[1, 0], [0, 1]], dtype=float)
        logits = np.where(targets > 0, 5.0, -5.0)
        assert f1_macro_multilabel(logits, targets) == 1.0

    def test_absent_label_counts_zero(self):
        # Label 1 never true and never predicted -> contributes 0.
        targets = np.array([[1, 0], [1, 0]], dtype=float)
        logits = np.array([[5.0, -5.0], [5.0, -5.0]])
        assert f1_macro_multilabel(logits, targets) == pytest.approx(0.5)


class TestConfusion:
    def test_known_matrix(self):
        logits = one_hot_logits([0, 0, 1, 2], 3)
        labels = np.array([0, 1, 1, 2])
        expected = np.array([[1, 0, 0], [1, 1, 0], [0, 0, 1]])
        np.testing.assert_array_equal(confusion_matrix(logits, labels), expected)

    def test_rows_sum_to_class_counts(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 5, size=40)
        logits = rng.normal(size=(40, 5))
        mat = confusion_matrix(logits, labels)
        np.testing.assert_array_equal(
            mat.sum(axis=1), np.bincount(labels, minlength=5)
        )

    def test_trace_equals_accuracy(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 4, size=30)
        logits = rng.normal(size=(30, 4))
        mat = confusion_matrix(logits, labels)
        assert mat.trace() / 30 == pytest.approx(accuracy(logits, labels))

    def test_explicit_num_classes(self):
        logits = one_hot_logits([0, 1], 2)
        mat = confusion_matrix(logits, np.array([0, 1]), num_classes=4)
        assert mat.shape == (4, 4)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros((3, 2)), np.zeros(4, dtype=int))


class TestMacroF1Multiclass:
    def test_perfect(self):
        logits = one_hot_logits([0, 1, 2], 3)
        assert f1_macro_multiclass(logits, np.array([0, 1, 2])) == 1.0

    def test_ignores_absent_classes(self):
        logits = one_hot_logits([0, 1], 3)
        assert f1_macro_multiclass(logits, np.array([0, 1])) == 1.0

    def test_penalises_minority_errors_more_than_micro(self):
        # 9 of class 0 right, the single class-1 node wrong.
        logits = one_hot_logits([0] * 10, 2)
        labels = np.array([0] * 9 + [1])
        micro = f1_micro_multiclass(logits, labels)
        macro = f1_macro_multiclass(logits, labels)
        assert macro < micro


class TestPerClass:
    def test_values(self):
        logits = one_hot_logits([0, 0, 1, 1], 2)
        labels = np.array([0, 1, 1, 1])
        acc = per_class_accuracy(logits, labels)
        assert acc[0] == pytest.approx(1.0)
        assert acc[1] == pytest.approx(2 / 3)

    def test_absent_class_nan(self):
        logits = one_hot_logits([0, 0], 3)
        acc = per_class_accuracy(logits, np.array([0, 0]))
        assert np.isnan(acc[1]) and np.isnan(acc[2])

    def test_mean_over_present_equals_macro_recall(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 3, size=25)
        logits = rng.normal(size=(25, 3))
        acc = per_class_accuracy(logits, labels)
        assert np.nanmean(acc) <= 1.0


class TestProperties:
    @given(
        logits=hnp.arrays(np.float64, (13, 4), elements=st.floats(-5, 5)),
        labels=hnp.arrays(np.int64, (13,), elements=st.integers(0, 3)),
    )
    @settings(max_examples=40, deadline=None)
    def test_macro_f1_in_unit_interval(self, logits, labels):
        assert 0.0 <= f1_macro_multiclass(logits, labels) <= 1.0

    @given(
        logits=hnp.arrays(np.float64, (11, 3), elements=st.floats(-5, 5)),
        targets=hnp.arrays(np.int64, (11, 3), elements=st.integers(0, 1)),
    )
    @settings(max_examples=40, deadline=None)
    def test_f1_bounds_multilabel(self, logits, targets):
        assert 0.0 <= f1_micro_multilabel(logits, targets.astype(float)) <= 1.0
        assert 0.0 <= f1_macro_multilabel(logits, targets.astype(float)) <= 1.0

    @given(labels=hnp.arrays(np.int64, (17,), elements=st.integers(0, 4)))
    @settings(max_examples=40, deadline=None)
    def test_perfect_prediction_maximises_everything(self, labels):
        logits = one_hot_logits(labels, 5)
        assert accuracy(logits, labels) == 1.0
        assert f1_macro_multiclass(logits, labels) == 1.0
        assert confusion_matrix(logits, labels).trace() == len(labels)
