"""Model containers: dims, forward, parameter plumbing."""

import numpy as np
import pytest

from repro.graph.propagation import mean_aggregation, sym_norm
from repro.nn import GATModel, GCNModel, GraphSAGEModel, layer_dims
from repro.tensor import Tensor

from ..util import ring_graph


def rng():
    return np.random.default_rng(0)


class TestLayerDims:
    def test_single_layer(self):
        assert layer_dims(10, 64, 3, 1) == [10, 3]

    def test_multi_layer(self):
        assert layer_dims(10, 64, 3, 4) == [10, 64, 64, 64, 3]

    def test_invalid(self):
        with pytest.raises(ValueError):
            layer_dims(10, 64, 3, 0)


class TestGraphSAGEModel:
    def test_forward_shape(self):
        m = GraphSAGEModel(8, 16, 5, 3, 0.0, rng())
        prop = mean_aggregation(ring_graph(10))
        out = m.full_forward(prop, Tensor(np.random.rand(10, 8)), rng())
        assert out.shape == (10, 5)

    def test_num_layers(self):
        m = GraphSAGEModel(8, 16, 5, 3, 0.0, rng())
        assert m.num_layers == 3

    def test_parameters_counted(self):
        m = GraphSAGEModel(8, 16, 5, 2, 0.0, rng())
        # layer1: (2*8)x16 + 16 ; layer2: (2*16)x5 + 5
        assert m.num_parameters() == (16 * 16 + 16) + (32 * 5 + 5)

    def test_dropout_only_in_training(self):
        m = GraphSAGEModel(4, 8, 3, 2, 0.9, rng())
        prop = mean_aggregation(ring_graph(6))
        x = Tensor(np.random.rand(6, 4))
        m.eval()
        a = m.full_forward(prop, x, np.random.default_rng(1)).data
        b = m.full_forward(prop, x, np.random.default_rng(2)).data
        np.testing.assert_array_equal(a, b)
        m.train()
        c = m.full_forward(prop, x, np.random.default_rng(1)).data
        d = m.full_forward(prop, x, np.random.default_rng(2)).data
        assert not np.allclose(c, d)

    def test_layer_flops(self):
        m = GraphSAGEModel(8, 16, 5, 2, 0.0, rng())
        assert m.layer_flops(0, 10, 20, 100) > 0

    def test_single_layer_model(self):
        m = GraphSAGEModel(8, 16, 5, 1, 0.0, rng())
        prop = mean_aggregation(ring_graph(4))
        out = m.full_forward(prop, Tensor(np.random.rand(4, 8)), rng())
        assert out.shape == (4, 5)


class TestGCNModel:
    def test_forward_shape(self):
        m = GCNModel(8, 16, 5, 2, 0.0, rng())
        prop = sym_norm(ring_graph(10))
        out = m.full_forward(prop, Tensor(np.random.rand(10, 8)), rng())
        assert out.shape == (10, 5)

    def test_backward_through_model(self):
        m = GCNModel(4, 8, 3, 2, 0.0, rng())
        prop = sym_norm(ring_graph(5))
        out = m.full_forward(prop, Tensor(np.random.rand(5, 4)), rng())
        out.sum().backward()
        assert all(p.grad is not None for p in m.parameters())


class TestGATModel:
    def test_forward_shape(self):
        m = GATModel(8, 4, 5, 2, 0.0, rng(), num_heads=2)
        src, dst = np.array([0, 1, 2]), np.array([1, 2, 0])
        out = m.full_forward(src, dst, Tensor(np.random.rand(3, 8)), rng())
        assert out.shape == (3, 5)

    def test_hidden_width_includes_heads(self):
        m = GATModel(8, 4, 5, 3, 0.0, rng(), num_heads=2)
        assert m.dims == [8, 8, 8, 5]

    def test_single_layer(self):
        m = GATModel(8, 4, 5, 1, 0.0, rng())
        assert m.num_layers == 1
        assert m.dims == [8, 5]

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            GATModel(8, 4, 5, 0, 0.0, rng())

    def test_gradients_flow(self):
        m = GATModel(4, 3, 2, 2, 0.0, rng())
        src, dst = np.array([0, 1]), np.array([1, 0])
        out = m.full_forward(src, dst, Tensor(np.random.rand(2, 4)), rng())
        out.sum().backward()
        assert all(p.grad is not None for p in m.parameters())
