"""Module/Parameter registration and (de)serialisation."""

import numpy as np
import pytest

from repro.nn import Module, Parameter
from repro.tensor import Tensor


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))
        self.b = Parameter(np.zeros(2))


class Parent(Module):
    def __init__(self):
        super().__init__()
        self.child = Leaf()
        self.own = Parameter(np.ones(3))


class WithList(Module):
    def __init__(self):
        super().__init__()
        self.layers = [Leaf(), Leaf()]


class TestRegistration:
    def test_leaf_parameters(self):
        assert len(Leaf().parameters()) == 2

    def test_nested_parameters(self):
        assert len(Parent().parameters()) == 3

    def test_list_of_modules(self):
        assert len(WithList().parameters()) == 4

    def test_named_parameters_prefixed(self):
        names = dict(Parent().named_parameters())
        assert "own" in names
        assert "child.w" in names

    def test_num_parameters(self):
        assert Leaf().num_parameters() == 6

    def test_parameter_is_trainable(self):
        p = Parameter(np.ones(2))
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagate(self):
        m = Parent()
        m.eval()
        assert not m.training
        assert not m.child.training
        m.train()
        assert m.child.training

    def test_zero_grad(self):
        m = Leaf()
        (m.w.sum() + m.b.sum()).backward()
        assert m.w.grad is not None
        m.zero_grad()
        assert m.w.grad is None and m.b.grad is None


class TestStateDict:
    def test_roundtrip(self):
        a, b = Parent(), Parent()
        a.own.data[:] = 7.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.own.data, a.own.data)

    def test_state_dict_copies(self):
        m = Leaf()
        sd = m.state_dict()
        sd["w"][:] = 99.0
        assert not (m.w.data == 99.0).any()

    def test_missing_key_raises(self):
        m = Leaf()
        sd = m.state_dict()
        del sd["w"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_unexpected_key_raises(self):
        m = Leaf()
        sd = m.state_dict()
        sd["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_shape_mismatch_raises(self):
        m = Leaf()
        sd = m.state_dict()
        sd["w"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)
