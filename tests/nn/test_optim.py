"""Optimisers: SGD and Adam behaviour."""

import numpy as np
import pytest

from repro.nn import Adam, SGD
from repro.tensor import Tensor


def quadratic_param(value=5.0):
    return Tensor(np.array([value]), requires_grad=True)


def step_quadratic(opt, p, steps):
    """Minimise f(p) = p² with the given optimiser."""
    for _ in range(steps):
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(SGD([p], lr=0.1), p, 50)) < 1e-3

    def test_single_step_exact(self):
        p = quadratic_param(2.0)
        opt = SGD([p], lr=0.5)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        # p - lr*2p = 2 - 0.5*4 = 0
        assert p.data[0] == pytest.approx(0.0)

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        v1 = step_quadratic(SGD([p1], lr=0.01), p1, 20)
        v2 = step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, 20)
        assert abs(v2) < abs(v1)

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # zero loss gradient: only decay acts
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_skips_param_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad yet: no crash, no change
        assert p.data[0] == 5.0


class TestAdam:
    def test_descends_quadratic(self):
        # Adam's steps are ~lr-sized near the optimum, so it orbits
        # within a lr-wide band rather than converging exactly.
        p = quadratic_param()
        assert abs(step_quadratic(Adam([p], lr=0.1), p, 200)) < 0.2

    def test_first_step_is_lr_sized(self):
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        # Bias-corrected first Adam step ≈ lr * sign(grad).
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_weight_decay(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_state_grows_with_steps(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
        assert opt._t == 1
        assert opt._m[0] is not None


class TestValidation:
    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], lr=0.0)
