"""Learning-rate schedulers: exact schedules and edge cases."""

import math

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineAnnealingLR,
    LinearWarmupLR,
    MultiStepLR,
    ReduceLROnPlateau,
    SGD,
    StepLR,
)
from repro.tensor import Tensor


def make_opt(lr=0.1):
    p = Tensor(np.zeros(3), requires_grad=True)
    return SGD([p], lr=lr)


class TestStepLR:
    def test_schedule_values(self):
        opt = make_opt(lr=1.0)
        sched = StepLR(opt, step_size=3, gamma=0.1)
        lrs = [sched.step() for _ in range(7)]
        assert lrs == pytest.approx([1, 1, 1, 0.1, 0.1, 0.1, 0.01])

    def test_mutates_optimizer(self):
        opt = make_opt(lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.5)

    def test_rejects_bad_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)


class TestMultiStepLR:
    def test_milestones(self):
        opt = make_opt(lr=1.0)
        sched = MultiStepLR(opt, milestones=[2, 5], gamma=0.1)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([1, 1, 0.1, 0.1, 0.1, 0.01])

    def test_unsorted_milestones_accepted(self):
        opt = make_opt(lr=1.0)
        sched = MultiStepLR(opt, milestones=[5, 2], gamma=0.1)
        assert sched.get_lr(3) == pytest.approx(0.1)

    def test_rejects_negative_milestone(self):
        with pytest.raises(ValueError):
            MultiStepLR(make_opt(), milestones=[-1])


class TestCosine:
    def test_endpoints(self):
        opt = make_opt(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        assert sched.get_lr(0) == pytest.approx(1.0)
        assert sched.get_lr(10) == pytest.approx(0.01)

    def test_midpoint(self):
        sched = CosineAnnealingLR(make_opt(lr=1.0), t_max=10)
        assert sched.get_lr(5) == pytest.approx(0.5)

    def test_clamps_past_t_max(self):
        sched = CosineAnnealingLR(make_opt(lr=1.0), t_max=4, eta_min=0.2)
        assert sched.get_lr(100) == pytest.approx(0.2)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_opt(lr=1.0), t_max=20)
        lrs = [sched.get_lr(e) for e in range(21)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))


class TestWarmup:
    def test_linear_ramp(self):
        opt = make_opt(lr=1.0)
        sched = LinearWarmupLR(opt, warmup=4)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([0.25, 0.5, 0.75, 1.0, 1.0, 1.0])

    def test_hands_over_to_inner(self):
        opt = make_opt(lr=1.0)
        inner = StepLR(opt, step_size=1, gamma=0.5)
        sched = LinearWarmupLR(opt, warmup=2, after=inner)
        lrs = [sched.step() for _ in range(4)]
        # warmup epochs 0-1, then inner sees shifted epochs 0,1.
        assert lrs == pytest.approx([0.5, 1.0, 1.0, 0.5])


class TestPlateau:
    def test_decays_after_patience(self):
        opt = make_opt(lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2, mode="max")
        sched.step(0.5)  # best
        for _ in range(2):
            sched.step(0.4)  # within patience
        assert opt.lr == pytest.approx(1.0)
        sched.step(0.4)  # exceeds patience -> decay
        assert opt.lr == pytest.approx(0.5)

    def test_improvement_resets_counter(self):
        opt = make_opt(lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1, mode="max")
        sched.step(0.5)
        sched.step(0.4)
        sched.step(0.6)  # improvement
        sched.step(0.5)
        assert opt.lr == pytest.approx(1.0)

    def test_min_mode(self):
        opt = make_opt(lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, mode="min")
        sched.step(1.0)
        sched.step(2.0)  # worse in min mode -> immediate decay
        assert opt.lr == pytest.approx(0.1)

    def test_respects_min_lr(self):
        opt = make_opt(lr=1.0)
        sched = ReduceLROnPlateau(opt, factor=0.1, patience=0, min_lr=0.05)
        sched.step(1.0)
        for _ in range(5):
            sched.step(0.0)
        assert opt.lr == pytest.approx(0.05)

    def test_requires_metric(self):
        sched = ReduceLROnPlateau(make_opt())
        with pytest.raises(ValueError):
            sched.step()

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(make_opt(), factor=1.5)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            ReduceLROnPlateau(make_opt(), mode="avg")


class TestIntegration:
    def test_scheduled_sgd_still_descends(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(4,)), requires_grad=True)
        opt = Adam([w], lr=0.1)
        sched = CosineAnnealingLR(opt, t_max=50)
        target = np.array([1.0, -2.0, 3.0, 0.5])
        losses = []
        for _ in range(50):
            opt.zero_grad()
            diff = w - Tensor(target)
            loss = (diff * diff).sum()
            loss.backward()
            opt.step()
            sched.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 1e-2
