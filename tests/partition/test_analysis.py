"""Section 3.1 analysis quantities: Eq. 3, Table 1 rows, Fig. 3 data."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partition import (
    PartitionResult,
    boundary_inner_table,
    communication_volume,
    edge_cut,
    partition_stats,
    random_partition,
    ratio_distribution,
    sender_degrees,
)

from ..util import ring_graph


class TestEq3Identity:
    """Eq. 3: Σ_v D(v)  ==  Σ_i |B_i|  (sender view == receiver view)."""

    def test_ring(self):
        adj = ring_graph(8)
        part = PartitionResult(np.array([0, 0, 1, 1, 2, 2, 3, 3]), 4)
        lhs = int(sender_degrees(adj, part.assignment).sum())
        rhs = communication_volume(adj, part)
        assert lhs == rhs

    def test_random_partitions(self, small_graph):
        for seed in range(3):
            part = random_partition(
                small_graph.num_nodes, 5, np.random.default_rng(seed)
            )
            lhs = int(sender_degrees(small_graph.adj, part.assignment).sum())
            rhs = communication_volume(small_graph.adj, part)
            assert lhs == rhs

    @given(st.integers(2, 6), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_property_on_rings(self, k, seed):
        n = 24
        adj = ring_graph(n)
        part = random_partition(n, k, np.random.default_rng(seed))
        assert int(sender_degrees(adj, part.assignment).sum()) == communication_volume(
            adj, part
        )


class TestSenderDegrees:
    def test_interior_node_zero(self):
        adj = ring_graph(6)
        part = PartitionResult(np.array([0, 0, 0, 1, 1, 1]), 2)
        d = sender_degrees(adj, part.assignment)
        # Node 1 has both neighbours inside part 0.
        assert d[1] == 0

    def test_border_node_one(self):
        adj = ring_graph(6)
        part = PartitionResult(np.array([0, 0, 0, 1, 1, 1]), 2)
        d = sender_degrees(adj, part.assignment)
        assert d[2] == 1 and d[3] == 1

    def test_hub_counts_distinct_parts_once(self):
        # Star: center 0 with 4 leaves in 2 foreign parts.
        import scipy.sparse as sp

        rows = [0, 0, 0, 0]
        cols = [1, 2, 3, 4]
        up = sp.coo_matrix((np.ones(4), (rows, cols)), shape=(5, 5))
        adj = (up + up.T).tocsr()
        assignment = np.array([0, 1, 1, 2, 2])
        d = sender_degrees(adj, assignment)
        assert d[0] == 2  # parts {1, 2}, not 4 edges


class TestEdgeCut:
    def test_ring_two_parts(self):
        adj = ring_graph(8)
        part = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert edge_cut(adj, part) == 2

    def test_all_same_part(self):
        assert edge_cut(ring_graph(8), np.zeros(8, dtype=int)) == 0


class TestTables:
    def test_boundary_inner_rows(self, small_graph, small_partition):
        rows = boundary_inner_table(small_graph.adj, small_partition)
        assert len(rows) == small_partition.num_parts
        for row in rows:
            assert row["inner"] > 0
            assert row["ratio"] == pytest.approx(row["boundary"] / row["inner"])

    def test_ratio_distribution_shape(self, small_graph, small_partition):
        ratios = ratio_distribution(small_graph.adj, small_partition)
        assert ratios.shape == (small_partition.num_parts,)
        assert (ratios >= 0).all()

    def test_partition_stats_consistency(self, small_graph, small_partition):
        st_ = partition_stats(small_graph.adj, small_partition)
        assert st_.comm_volume == communication_volume(small_graph.adj, small_partition)
        assert st_.total_boundary == st_.boundary_sizes.sum()
        assert st_.max_ratio == st_.ratios.max()
        assert st_.inner_sizes.sum() == small_graph.num_nodes

    def test_boundary_nodes_are_others_inner(self, small_graph, small_partition):
        # Every boundary node of partition i must be an inner node of
        # exactly one other partition.
        for i in range(small_partition.num_parts):
            bd = small_partition.boundary_nodes(small_graph.adj, i)
            owners = small_partition.assignment[bd]
            assert (owners != i).all()
