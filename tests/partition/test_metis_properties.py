"""Property-based tests of the METIS-like partitioner (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.generators import planted_partition_adjacency
from repro.partition import (
    MetisLikeConfig,
    communication_volume,
    metis_like_partition,
)


def make_graph(seed, n=120, k_comm=4):
    rng = np.random.default_rng(seed)
    comm = np.arange(n) % k_comm
    return planted_partition_adjacency(rng, n, comm, 6.0, 0.8, 2.0)


class TestPartitionProperties:
    @given(st.integers(0, 30), st.integers(2, 6))
    @settings(max_examples=12, deadline=None)
    def test_cover_and_range(self, seed, k):
        adj = make_graph(seed)
        res = metis_like_partition(adj, k, MetisLikeConfig(seed=seed))
        assert res.assignment.shape == (adj.shape[0],)
        assert res.assignment.min() >= 0
        assert res.assignment.max() < k
        assert res.part_sizes().sum() == adj.shape[0]

    @given(st.integers(0, 30), st.integers(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_balance_property(self, seed, k):
        adj = make_graph(seed)
        cfg = MetisLikeConfig(balance_eps=0.2, seed=seed)
        res = metis_like_partition(adj, k, cfg)
        sizes = res.part_sizes()
        target = adj.shape[0] / k
        assert sizes.max() <= (1 + cfg.balance_eps) * target + 1

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_structured_beats_random_on_average(self, seed):
        """On homophilous graphs metis-like should not lose to random
        partitioning on communication volume."""
        from repro.partition import random_partition

        adj = make_graph(seed, n=150)
        k = 4
        metis = metis_like_partition(adj, k, MetisLikeConfig(seed=seed))
        rand = random_partition(adj.shape[0], k, np.random.default_rng(seed))
        v_m = communication_volume(adj, metis)
        v_r = communication_volume(adj, rand)
        assert v_m <= v_r * 1.05  # small slack: both are heuristics

    @given(st.integers(0, 20))
    @settings(max_examples=8, deadline=None)
    def test_deterministic(self, seed):
        adj = make_graph(seed)
        a = metis_like_partition(adj, 3, MetisLikeConfig(seed=seed)).assignment
        b = metis_like_partition(adj, 3, MetisLikeConfig(seed=seed)).assignment
        np.testing.assert_array_equal(a, b)
