"""Random + METIS-like partitioners: correctness and quality."""

import numpy as np
import pytest

from repro.partition import (
    MetisLikeConfig,
    PartitionResult,
    communication_volume,
    edge_cut,
    metis_like_partition,
    partition_graph,
    partition_stats,
    random_partition,
)

from ..util import grid_graph, ring_graph


class TestPartitionResult:
    def test_inner_nodes_sorted_disjoint_cover(self):
        res = PartitionResult(np.array([0, 1, 0, 1, 2]), 3)
        all_nodes = np.concatenate([res.inner_nodes(i) for i in range(3)])
        assert sorted(all_nodes.tolist()) == [0, 1, 2, 3, 4]

    def test_part_sizes(self):
        res = PartitionResult(np.array([0, 1, 0, 1, 2]), 3)
        np.testing.assert_array_equal(res.part_sizes(), [2, 2, 1])

    def test_out_of_range_assignment(self):
        with pytest.raises(ValueError):
            PartitionResult(np.array([0, 3]), 2)

    def test_negative_assignment(self):
        with pytest.raises(ValueError):
            PartitionResult(np.array([0, -1]), 2)

    def test_boundary_nodes_ring(self):
        # Ring 0-1-2-3-0 split [0,1] vs [2,3]: each part's boundary is
        # the two remote endpoints.
        res = PartitionResult(np.array([0, 0, 1, 1]), 2)
        adj = ring_graph(4)
        np.testing.assert_array_equal(res.boundary_nodes(adj, 0), [2, 3])
        np.testing.assert_array_equal(res.boundary_nodes(adj, 1), [0, 1])

    def test_boundary_excludes_inner(self):
        res = PartitionResult(np.array([0, 0, 1, 1, 1, 1]), 2)
        adj = ring_graph(6)
        bd = res.boundary_nodes(adj, 1)
        inner = res.inner_nodes(1)
        assert not np.intersect1d(bd, inner).size

    def test_empty_part_boundary(self):
        res = PartitionResult(np.zeros(4, dtype=np.int64), 2)
        assert res.boundary_nodes(ring_graph(4), 1).size == 0


class TestRandomPartition:
    def test_balanced_sizes(self):
        res = random_partition(100, 7, np.random.default_rng(0))
        sizes = res.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_deterministic_given_rng(self):
        a = random_partition(50, 4, np.random.default_rng(5)).assignment
        b = random_partition(50, 4, np.random.default_rng(5)).assignment
        np.testing.assert_array_equal(a, b)

    def test_more_parts_than_nodes_rejected(self):
        with pytest.raises(ValueError):
            random_partition(3, 5, np.random.default_rng(0))

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            random_partition(3, 0, np.random.default_rng(0))


class TestMetisLike:
    def test_single_part(self):
        res = metis_like_partition(ring_graph(10), 1)
        assert (res.assignment == 0).all()

    def test_too_many_parts(self):
        with pytest.raises(ValueError):
            metis_like_partition(ring_graph(4), 8)

    def test_bad_objective(self):
        with pytest.raises(ValueError):
            metis_like_partition(ring_graph(8), 2, MetisLikeConfig(objective="bogus"))

    def test_covers_all_nodes(self, small_graph):
        res = metis_like_partition(small_graph.adj, 4)
        assert res.part_sizes().sum() == small_graph.num_nodes

    def test_balance_respected(self, small_graph):
        cfg = MetisLikeConfig(balance_eps=0.15)
        res = metis_like_partition(small_graph.adj, 4, cfg)
        sizes = res.part_sizes()
        target = small_graph.num_nodes / 4
        assert sizes.max() <= (1 + cfg.balance_eps) * target + 1
        assert sizes.min() >= (1 - cfg.balance_eps) * target - 1

    def test_beats_random_on_volume(self, small_graph):
        metis = metis_like_partition(
            small_graph.adj, 4, MetisLikeConfig(objective="volume", seed=0)
        )
        rand = random_partition(small_graph.num_nodes, 4, np.random.default_rng(0))
        v_metis = communication_volume(small_graph.adj, metis)
        v_rand = communication_volume(small_graph.adj, rand)
        assert v_metis < v_rand

    def test_beats_random_on_cut(self, small_graph):
        metis = metis_like_partition(
            small_graph.adj, 4, MetisLikeConfig(objective="cut", seed=0)
        )
        rand = random_partition(small_graph.num_nodes, 4, np.random.default_rng(0))
        assert edge_cut(small_graph.adj, metis.assignment) < edge_cut(
            small_graph.adj, rand.assignment
        )

    def test_grid_bisection_near_optimal(self):
        # An 8x8 grid split in two has an optimal cut of 8; the
        # partitioner should land in the same ballpark.
        adj = grid_graph(8, 8)
        res = metis_like_partition(adj, 2, MetisLikeConfig(seed=1))
        assert edge_cut(adj, res.assignment) <= 16

    def test_deterministic_given_seed(self, small_graph):
        a = metis_like_partition(small_graph.adj, 3, MetisLikeConfig(seed=4))
        b = metis_like_partition(small_graph.adj, 3, MetisLikeConfig(seed=4))
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_method_label(self, small_graph):
        res = metis_like_partition(small_graph.adj, 2)
        assert res.method == "metis-like/volume"


class TestFacade:
    def test_metis_route(self, small_graph):
        res = partition_graph(small_graph, 3, method="metis", seed=0)
        assert res.num_parts == 3

    def test_random_route(self, small_graph):
        res = partition_graph(small_graph, 3, method="random", seed=0)
        assert res.method == "random"

    def test_unknown_method(self, small_graph):
        with pytest.raises(ValueError):
            partition_graph(small_graph, 3, method="hilbert-curve")
