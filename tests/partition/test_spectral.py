"""Spectral partitioner: validity, balance, quality vs random."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.partition import (
    SpectralConfig,
    communication_volume,
    edge_cut,
    partition_graph,
    random_partition,
    spectral_partition,
)

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
from util import ring_graph  # noqa: E402


def two_cliques(m=20, bridges=1):
    """Two m-cliques joined by `bridges` edges — the canonical spectral
    bisection case."""
    n = 2 * m
    a = np.zeros((n, n))
    a[:m, :m] = 1
    a[m:, m:] = 1
    np.fill_diagonal(a, 0)
    for b in range(bridges):
        a[b, m + b] = a[m + b, b] = 1
    return sp.csr_matrix(a)


class TestValidity:
    def test_assignment_covers_all_nodes(self, small_graph):
        part = spectral_partition(small_graph.adj, 4)
        assert part.assignment.shape == (small_graph.num_nodes,)
        assert set(np.unique(part.assignment)) <= set(range(4))

    def test_single_part_trivial(self, small_graph):
        part = spectral_partition(small_graph.adj, 1)
        assert (part.assignment == 0).all()

    def test_rejects_more_parts_than_nodes(self):
        with pytest.raises(ValueError):
            spectral_partition(ring_graph(4), 5)

    def test_rejects_nonpositive_parts(self):
        with pytest.raises(ValueError):
            spectral_partition(ring_graph(4), 0)

    def test_method_label(self, small_graph):
        assert spectral_partition(small_graph.adj, 2).method == "spectral"

    def test_deterministic_for_seed(self, small_graph):
        a = spectral_partition(small_graph.adj, 3, SpectralConfig(seed=5))
        b = spectral_partition(small_graph.adj, 3, SpectralConfig(seed=5))
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestBalance:
    @pytest.mark.parametrize("k", [2, 4])
    def test_respects_slack(self, small_graph, k):
        cfg = SpectralConfig(slack=0.1)
        part = spectral_partition(small_graph.adj, k, cfg)
        cap = int(np.ceil(1.1 * small_graph.num_nodes / k))
        assert part.part_sizes().max() <= cap

    def test_tight_slack_enforced(self, small_graph):
        cfg = SpectralConfig(slack=0.02)
        part = spectral_partition(small_graph.adj, 4, cfg)
        cap = int(np.ceil(1.02 * small_graph.num_nodes / 4))
        assert part.part_sizes().max() <= cap


class TestQuality:
    def test_separates_two_cliques(self):
        adj = two_cliques(m=16)
        part = spectral_partition(adj, 2)
        # Each clique must land (almost) entirely in one partition:
        # the cut can't exceed the bridge count by much.
        assert edge_cut(adj, part.assignment) <= 4

    def test_beats_random_on_communities(self, small_graph):
        spec = spectral_partition(small_graph.adj, 4)
        rand = random_partition(
            small_graph.num_nodes, 4, np.random.default_rng(0)
        )
        assert communication_volume(small_graph.adj, spec) < communication_volume(
            small_graph.adj, rand
        )

    def test_handles_isolated_nodes(self):
        adj = two_cliques(m=10).tolil()
        adj.resize((24, 24))  # nodes 20-23 isolated
        part = spectral_partition(adj.tocsr(), 2)
        assert part.assignment.shape == (24,)


class TestFacade:
    def test_partition_graph_spectral(self, small_graph):
        part = partition_graph(small_graph, 3, method="spectral", seed=1)
        assert part.method == "spectral"
        assert part.num_parts == 3

    def test_trains_on_spectral_partition(self, small_graph):
        from repro.core import BoundaryNodeSampler, DistributedTrainer
        from repro.nn import GraphSAGEModel

        part = partition_graph(small_graph, 3, method="spectral")
        model = GraphSAGEModel(
            small_graph.feature_dim, 16, small_graph.num_classes, 2, 0.0,
            np.random.default_rng(0),
        )
        t = DistributedTrainer(
            small_graph, part, model, BoundaryNodeSampler(0.5), lr=0.01
        )
        h = t.train(10)
        assert h.loss[-1] < h.loss[0]
