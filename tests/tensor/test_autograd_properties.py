"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, gather_rows, relu, softmax


finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def small_matrix(max_side=5):
    return st.integers(1, max_side).flatmap(
        lambda r: st.integers(1, max_side).flatmap(
            lambda c: arrays(np.float64, (r, c), elements=finite_floats)
        )
    )


class TestLinearityProperties:
    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(small_matrix(), st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scalar_multiple_scales_gradient(self, x, c):
        t = Tensor(x, requires_grad=True)
        (t * c).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, c))

    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_add_self_doubles_gradient(self, x):
        t = Tensor(x, requires_grad=True)
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 2.0))

    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_forward_backward_shapes_agree(self, x):
        t = Tensor(x, requires_grad=True)
        (t * t).sum().backward()
        assert t.grad.shape == x.shape


class TestActivationProperties:
    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_relu_gradient_in_01(self, x):
        t = Tensor(x, requires_grad=True)
        relu(t).sum().backward()
        assert ((t.grad == 0) | (t.grad == 1)).all()

    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_normalised(self, x):
        out = softmax(Tensor(x), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, atol=1e-9)

    @given(small_matrix())
    @settings(max_examples=30, deadline=None)
    def test_softmax_gradient_rows_sum_zero(self, x):
        # d(softmax)/dx has rows orthogonal to 1 => grad of any fn that
        # only sees softmax sums to ~0 per row when seeded with ones.
        t = Tensor(x, requires_grad=True)
        softmax(t, axis=-1).sum().backward()
        np.testing.assert_allclose(t.grad.sum(axis=-1), 0.0, atol=1e-9)


class TestGatherProperties:
    @given(
        arrays(np.float64, (6, 3), elements=finite_floats),
        st.lists(st.integers(0, 5), min_size=1, max_size=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_gather_grad_counts_occurrences(self, x, idx):
        idx = np.asarray(idx)
        t = Tensor(x, requires_grad=True)
        gather_rows(t, idx).sum().backward()
        counts = np.bincount(idx, minlength=6).astype(float)
        np.testing.assert_allclose(t.grad, counts[:, None] * np.ones((6, 3)))

    @given(arrays(np.float64, (4, 2), elements=finite_floats))
    @settings(max_examples=30, deadline=None)
    def test_gather_identity_permutation(self, x):
        out = gather_rows(Tensor(x), np.arange(4))
        np.testing.assert_array_equal(out.data, x)
