"""The dtype subsystem: defaults, preservation, gradient dtype.

The regression this file pins down end to end: an fp32 tensor must stay
fp32 through every op, its gradient must accumulate as fp32 (not
silently materialise as fp64 and upcast the parameter on the first
optimizer step), and the shared ``scalar_nbytes`` helper must report
the width the wire actually ships.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    SparseOp,
    SplitOperator,
    Tensor,
    default_dtype,
    dropout,
    gather_rows,
    get_default_dtype,
    relu,
    resolve_dtype,
    scalar_nbytes,
    scatter_rows,
    segment_softmax,
    set_default_dtype,
    softmax,
    spmm,
)
from repro.nn import Adam, GraphSAGEModel, SGD, module_dtype
from repro.nn import functional as F


class TestDefaults:
    def test_default_is_float64(self):
        # (unless the session was started under REPRO_DTYPE=float32)
        assert get_default_dtype() in (np.dtype(np.float64), np.dtype(np.float32))

    def test_set_and_restore(self):
        prev = set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.float32
            assert Tensor([1.0]).dtype == np.float32
        finally:
            set_default_dtype(prev)
        assert get_default_dtype() == prev

    def test_context_manager(self):
        before = get_default_dtype()
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == before

    def test_resolve(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64
        assert resolve_dtype(None) == get_default_dtype()

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.float16)
        with pytest.raises(ValueError):
            set_default_dtype("int32")

    def test_scalar_nbytes(self):
        assert scalar_nbytes(np.float32) == 4
        assert scalar_nbytes(np.float64) == 8
        assert scalar_nbytes() == get_default_dtype().itemsize


class TestGradDtypeRegression:
    """tensor.py used to materialise .grad as float64 unconditionally."""

    def test_grad_accumulates_in_data_dtype(self):
        t = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None and t.grad.dtype == np.float32

    def test_second_accumulation_stays_fp32(self):
        t = Tensor(np.ones(5, dtype=np.float32), requires_grad=True)
        (t * 1.5).sum().backward()
        (t * 2.5).sum().backward()
        assert t.grad.dtype == np.float32

    @pytest.mark.parametrize("opt_cls", [SGD, Adam])
    def test_optimizer_step_does_not_upcast(self, opt_cls):
        t = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        opt = opt_cls([t], lr=0.1)
        (t * t).sum().backward()
        opt.step()
        assert t.data.dtype == np.float32
        if isinstance(opt, Adam):
            assert opt._m[0].dtype == np.float32
            assert opt._v[0].dtype == np.float32

    def test_explicit_backward_seed_is_cast(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        out = t * 3.0
        out.backward(np.ones((2, 2)))  # fp64 seed
        assert t.grad.dtype == np.float32


class TestOpDtypePreservation:
    def _t(self):
        return Tensor(
            np.linspace(-1, 1, 12, dtype=np.float32).reshape(4, 3),
            requires_grad=True,
        )

    def test_arithmetic_with_python_scalars(self):
        t = self._t()
        out = ((t + 1) * 0.5 - 2) / 3.0
        assert out.dtype == np.float32
        out = 1.0 - t
        assert out.dtype == np.float32
        out = 1.0 / (t + 5.0)
        assert out.dtype == np.float32
        assert (t ** 2).dtype == np.float32

    def test_activations_and_softmax(self):
        t = self._t()
        assert relu(t).dtype == np.float32
        assert softmax(t).dtype == np.float32

    def test_dropout_mask(self):
        t = self._t()
        out = dropout(t, 0.5, np.random.default_rng(0))
        assert out.dtype == np.float32

    def test_gather_scatter(self):
        t = self._t()
        idx = np.array([0, 2])
        assert gather_rows(t, idx).dtype == np.float32
        assert scatter_rows(gather_rows(t, idx), idx, 4).dtype == np.float32

    def test_segment_softmax(self):
        scores = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        ids = np.array([0, 0, 1, 1, 2, 2])
        out = segment_softmax(scores, ids, 3)
        assert out.dtype == np.float32
        out.sum().backward()
        assert scores.grad.dtype == np.float32

    def test_losses(self):
        logits = Tensor(np.zeros((5, 3), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 0, 1]))
        assert loss.dtype == np.float32
        loss.backward()
        assert logits.grad.dtype == np.float32
        logits2 = Tensor(np.zeros((5, 3), dtype=np.float32), requires_grad=True)
        bce = F.bce_with_logits(logits2, np.zeros((5, 3)))
        assert bce.dtype == np.float32

    def test_astype_roundtrips_gradient(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = t.astype(np.float64)
        assert out.dtype == np.float64
        (out * 2.0).sum().backward()
        assert t.grad.dtype == np.float32
        np.testing.assert_allclose(t.grad, 2.0)


class TestSparseDtype:
    def _csr32(self, n=6):
        return sp.random(
            n, n, density=0.4, random_state=0, format="csr"
        ).astype(np.float32)

    def test_sparse_op_preserves_and_casts(self):
        op = SparseOp(self._csr32())
        assert op.dtype == np.float32
        assert op.astype(np.float64).dtype == np.float64
        assert op.astype(np.float32) is op

    def test_spmm_fp32(self):
        op = SparseOp(self._csr32())
        h = Tensor(np.ones((6, 4), dtype=np.float32), requires_grad=True)
        out = spmm(op, h)
        assert out.dtype == np.float32
        out.sum().backward()
        assert h.grad.dtype == np.float32

    def test_split_operator_dtype_and_astype(self):
        inner = self._csr32()
        bd = sp.random(6, 3, density=0.5, random_state=1).astype(np.float32).tocsc()
        op = SplitOperator(inner, bd, row_scale=np.ones(6, dtype=np.float32))
        assert op.dtype == np.float32
        h = np.ones((9, 2), dtype=np.float32)
        assert op.matmul(h).dtype == np.float32
        assert op.rmatmul(np.ones((6, 2), dtype=np.float32)).dtype == np.float32
        assert op.csr.dtype == np.float32
        op64 = op.astype(np.float64)
        assert op64.dtype == np.float64
        np.testing.assert_allclose(
            op64.matmul(h.astype(np.float64)), op.matmul(h), atol=1e-6
        )
        assert op.astype(np.float32) is op


class TestModelDtype:
    def _model(self, dtype=None):
        return GraphSAGEModel(5, 8, 3, 2, 0.0, np.random.default_rng(0), dtype=dtype)

    def test_model_dtype_threads_to_parameters(self):
        m = self._model("float32")
        assert module_dtype(m) == np.float32
        assert all(p.data.dtype == np.float32 for p in m.parameters())

    def test_fp32_init_draws_match_fp64(self):
        """One RNG stream: fp32 weights are the cast of the fp64 draws."""
        a = self._model(None)
        b = self._model("float32")
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(
                pa.data.astype(np.float32), pb.data
            )

    def test_to_casts_in_place(self):
        m = self._model(None)
        m.to(np.float32)
        assert module_dtype(m) == np.float32
        assert m.dtype == np.float32

    def test_load_state_dict_casts_to_param_dtype(self):
        src = self._model(None)  # fp64 state
        dst = self._model("float32")
        dst.load_state_dict(src.state_dict())
        assert module_dtype(dst) == np.float32


class TestWarmOptimizerCast:
    """Regression: Module.to + Optimizer.to must together retire every
    fp64 buffer — a warm optimizer's moments used to survive the cast
    and mix fp64 state into each subsequent step."""

    def test_adam_moments_follow_param_cast(self):
        t = Tensor(np.ones(4), requires_grad=True)  # fp64
        opt = Adam([t], lr=0.1)
        (t * t).sum().backward()
        opt.step()
        assert opt._m[0].dtype == np.float64
        t.data = t.data.astype(np.float32)
        opt.to()
        assert opt._m[0].dtype == np.float32
        assert opt._v[0].dtype == np.float32

    def test_sgd_velocity_follows_param_cast(self):
        t = Tensor(np.ones(4), requires_grad=True)
        opt = SGD([t], lr=0.1, momentum=0.9)
        (t * t).sum().backward()
        opt.step()
        t.data = t.data.astype(np.float32)
        opt.to()
        assert opt._velocity[0].dtype == np.float32


class TestSymNormDtype:
    """Regression: the self-loop identity (and the default-dtype path)
    used to promote fp32 sym-norm operators back to fp64."""

    def test_preserves_fp32_adjacency(self):
        import scipy.sparse as sp
        from repro.graph.propagation import mean_aggregation, sym_norm

        adj = sp.random(8, 8, density=0.3, random_state=0).astype(np.float32)
        adj = ((adj + adj.T) > 0).astype(np.float32).tocsr()
        assert sym_norm(adj).dtype == np.float32
        assert mean_aggregation(adj).dtype == np.float32
        assert sym_norm(adj, dtype=np.float64).dtype == np.float64
