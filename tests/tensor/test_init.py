"""Initialisation utilities."""

import math

import numpy as np

from repro.tensor import kaiming_uniform, make_rng, xavier_normal, xavier_uniform, zeros


class TestRng:
    def test_seeded_reproducible(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))


class TestXavier:
    def test_uniform_bound(self):
        rng = make_rng(0)
        t = xavier_uniform((100, 200), rng)
        bound = math.sqrt(6.0 / 300)
        assert np.abs(t.data).max() <= bound
        assert t.requires_grad

    def test_uniform_gain(self):
        rng = make_rng(0)
        t = xavier_uniform((50, 50), rng, gain=2.0)
        bound = 2.0 * math.sqrt(6.0 / 100)
        assert np.abs(t.data).max() <= bound

    def test_normal_std(self):
        rng = make_rng(0)
        t = xavier_normal((500, 500), rng)
        expected_std = math.sqrt(2.0 / 1000)
        assert abs(t.data.std() - expected_std) / expected_std < 0.05

    def test_1d_shape(self):
        t = xavier_uniform((10,), make_rng(0))
        assert t.shape == (10,)

    def test_conv_style_fans(self):
        # (out, in, k) shapes route through the receptive-field branch.
        t = xavier_uniform((4, 3, 5), make_rng(0))
        assert t.shape == (4, 3, 5)


class TestOthers:
    def test_kaiming_bound(self):
        t = kaiming_uniform((64, 32), make_rng(0))
        assert np.abs(t.data).max() <= math.sqrt(3.0 / 64)

    def test_zeros(self):
        t = zeros((3, 4))
        np.testing.assert_array_equal(t.data, np.zeros((3, 4)))
        assert t.requires_grad
