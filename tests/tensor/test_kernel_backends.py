"""Kernel backend registry and conformance: every registered backend
must agree with the materialised stacked operator (and with numpy's
dense arithmetic) across the full split-operator configuration matrix —
scalar/vector col_scale, row_scale on/off, empty boundary, 1-D
operands, fp32/fp64.  The ``numba`` cases auto-skip where the package
is absent; the optional-deps CI job runs them for real.
"""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.tensor import SparseOp, SplitOperator, Tensor, spmm
from repro.tensor.kernels import (
    NUMBA_AVAILABLE,
    KernelBackend,
    available_backends,
    backend_names,
    get_backend,
    merge_split_csr,
    resolve_backend,
    set_backend,
    use_backend,
)


BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(),
            reason=f"backend {name!r} unavailable on this host",
        ),
    )
    for name in backend_names()
]

TOL = {np.float64: 1e-12, np.float32: 1e-5}


def make_op(
    n_in=9,
    n_bd=6,
    density=0.4,
    seed=0,
    col_scale=None,
    row_scale=False,
    empty_boundary=False,
    dtype=np.float64,
):
    rng = np.random.RandomState(seed)
    inner = sp.random(n_in, n_in, density=density, random_state=rng).tocsr()
    bd = sp.random(n_in, n_bd, density=density, random_state=rng).tocsc()
    if empty_boundary:
        kept = np.empty(0, dtype=np.int64)
        cs = None if col_scale is None else np.empty(0)
    else:
        kept = np.array([0, 2, 3, 5])
        if col_scale == "vector":
            cs = np.abs(rng.normal(size=kept.size)) + 0.5
        else:
            cs = col_scale
    rs = np.abs(rng.normal(size=n_in)) + 0.1 if row_scale else None
    op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=cs)
    return op.astype(dtype)


def dense_reference(op, h):
    return op.csr.toarray() @ h


class TestConformance:
    """Every backend vs the dense stacked reference."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("col_scale", [None, 2.5, "vector"])
    @pytest.mark.parametrize("row_scale", [False, True])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_forward_backward(self, backend, col_scale, row_scale, dtype):
        op = make_op(seed=3, col_scale=col_scale, row_scale=row_scale,
                     dtype=dtype)
        rng = np.random.default_rng(7)
        h = rng.normal(size=(op.shape[1], 5)).astype(dtype)
        g = rng.normal(size=(op.shape[0], 5)).astype(dtype)
        b = resolve_backend(backend)
        fwd = b.split_spmm_forward(op, h)
        bwd = b.split_spmm_backward(op, g)
        assert fwd.dtype == dtype and bwd.dtype == dtype
        np.testing.assert_allclose(
            fwd, dense_reference(op, h), atol=TOL[dtype], rtol=TOL[dtype]
        )
        np.testing.assert_allclose(
            bwd, op.csr.toarray().T @ g, atol=TOL[dtype], rtol=TOL[dtype]
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_boundary(self, backend):
        op = make_op(seed=5, empty_boundary=True, row_scale=True)
        assert op.boundary is None
        h = np.random.default_rng(8).normal(size=(op.shape[1], 4))
        g = np.random.default_rng(9).normal(size=(op.shape[0], 4))
        b = resolve_backend(backend)
        np.testing.assert_allclose(
            b.split_spmm_forward(op, h), dense_reference(op, h), atol=1e-12
        )
        np.testing.assert_allclose(
            b.split_spmm_backward(op, g), op.csr.toarray().T @ g, atol=1e-12
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_1d_operand(self, backend):
        op = make_op(seed=11, col_scale="vector", row_scale=True)
        h = np.random.default_rng(12).normal(size=op.shape[1])
        g = np.random.default_rng(13).normal(size=op.shape[0])
        b = resolve_backend(backend)
        fwd = b.split_spmm_forward(op, h)
        bwd = b.split_spmm_backward(op, g)
        assert fwd.shape == (op.shape[0],)
        assert bwd.shape == (op.shape[1],)
        np.testing.assert_allclose(fwd, op.csr.toarray() @ h, atol=1e-12)
        np.testing.assert_allclose(bwd, op.csr.toarray().T @ g, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        n_in=st.integers(2, 12),
        n_bd=st.integers(0, 8),
        d=st.integers(1, 4),
        col_kind=st.sampled_from([None, "scalar", "vector"]),
        row_scale=st.booleans(),
    )
    def test_property_matches_dense(
        self, backend, seed, n_in, n_bd, d, col_kind, row_scale
    ):
        rng = np.random.RandomState(seed)
        inner = sp.random(n_in, n_in, density=0.5, random_state=rng).tocsr()
        bd = sp.random(n_in, max(n_bd, 1), density=0.5,
                       random_state=rng).tocsc()
        kept = np.flatnonzero(rng.random(max(n_bd, 1)) < 0.7) if n_bd else (
            np.empty(0, dtype=np.int64)
        )
        if col_kind == "vector":
            cs = rng.random(kept.size) + 0.5
        elif col_kind == "scalar":
            cs = 2.0
        else:
            cs = None
        if kept.size == 0 and isinstance(cs, np.ndarray):
            cs = np.empty(0)
        rs = rng.random(n_in) + 0.1 if row_scale else None
        op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=cs)
        h = rng.normal(size=(op.shape[1], d))
        g = rng.normal(size=(op.shape[0], d))
        b = resolve_backend(backend)
        np.testing.assert_allclose(
            b.split_spmm_forward(op, h), op.csr.toarray() @ h, atol=1e-10
        )
        np.testing.assert_allclose(
            b.split_spmm_backward(op, g), op.csr.toarray().T @ g, atol=1e-10
        )


class TestMergeSplitCsr:
    def test_matches_materialised_csr(self):
        op = make_op(seed=17, col_scale="vector", row_scale=True)
        merged = merge_split_csr(
            op.inner, op.boundary_csr, op.row_scale, op.col_scale
        )
        np.testing.assert_allclose(
            merged.toarray(), op.csr.toarray(), atol=1e-12
        )
        # canonical structure: sorted column indices within each row
        assert merged.has_sorted_indices

    def test_no_boundary_no_scale_returns_inner(self):
        op = make_op(seed=18, empty_boundary=True)
        merged = merge_split_csr(op.inner, None, None, None)
        assert merged is op.inner

    def test_cached_on_operator(self):
        op = make_op(seed=19, col_scale=2.0)
        assert op.fused_csr is op.fused_csr
        assert op.fused_csr_t is op.fused_csr_t
        np.testing.assert_allclose(
            op.fused_csr_t.toarray(), op.csr.toarray().T, atol=1e-12
        )


class TestRegistry:
    def test_default_is_numpy(self):
        assert get_backend().name == "numpy"

    def test_names_include_all(self):
        names = backend_names()
        assert "numpy" in names and "split" in names and "numba" in names

    def test_available_subset(self):
        avail = set(available_backends())
        assert {"numpy", "split"} <= avail
        assert ("numba" in avail) == NUMBA_AVAILABLE

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("bogus")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba installed here")
    def test_unavailable_backend_raises(self):
        with pytest.raises(RuntimeError, match="not available"):
            resolve_backend("numba")

    def test_instance_passes_through(self):
        b = resolve_backend("split")
        assert resolve_backend(b) is b

    def test_set_backend_returns_previous(self):
        prev = set_backend("split")
        try:
            assert get_backend().name == "split"
        finally:
            set_backend(prev)
        assert get_backend().name == prev.name

    def test_use_backend_scopes_and_nests(self):
        base = get_backend().name
        with use_backend("split") as b:
            assert b.name == "split"
            assert get_backend().name == "split"
            with use_backend("numpy"):
                assert get_backend().name == "numpy"
            assert get_backend().name == "split"
        assert get_backend().name == base

    def test_use_backend_is_thread_local(self):
        seen = {}
        ready = threading.Event()
        done = threading.Event()

        def inner_thread():
            ready.wait(5)
            seen["other"] = get_backend().name
            done.set()

        t = threading.Thread(target=inner_thread)
        t.start()
        with use_backend("split"):
            ready.set()
            done.wait(5)
            seen["here"] = get_backend().name
        t.join(5)
        assert seen == {"here": "split", "other": "numpy"}

    def test_env_var_presets_default(self):
        code = (
            "from repro.tensor.kernels import get_backend; "
            "print(get_backend().name)"
        )
        env = dict(os.environ, REPRO_KERNEL_BACKEND="split")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "split"

    def test_matmul_dispatches_to_active_backend(self):
        calls = []

        class Probe(KernelBackend):
            name = "probe-test"

            def split_spmm_forward(self, op, h):
                calls.append("fwd")
                return op.csr @ h

            def split_spmm_backward(self, op, g):
                calls.append("bwd")
                return op.csr.T @ g

        op = make_op(seed=23)
        h = np.ones((op.shape[1], 2))
        with use_backend(Probe()):
            op.matmul(h)
            op.rmatmul(np.ones((op.shape[0], 2)))
        assert calls == ["fwd", "bwd"]


class TestOperatorCaches:
    def test_sparseop_csr_t_cached(self):
        m = sp.random(8, 8, density=0.4, random_state=np.random.RandomState(29))
        op = SparseOp(m)
        t1 = op.csr_t
        assert op.csr_t is t1
        np.testing.assert_allclose(t1.toarray(), op.csr.toarray().T)

    def test_spmm_backward_uses_cached_transpose(self):
        m = sp.random(8, 8, density=0.4, random_state=np.random.RandomState(31))
        op = SparseOp(m)
        h = Tensor(np.random.default_rng(32).normal(size=(8, 3)),
                   requires_grad=True)
        out = spmm(op, h)
        out.sum().backward()
        assert op._csr_t is not None
        np.testing.assert_allclose(
            h.grad, op.csr.T @ np.ones((8, 3)), atol=1e-12
        )

    def test_frobenius_without_materialisation(self):
        for kwargs in (
            dict(col_scale="vector", row_scale=True),
            dict(col_scale=3.0, row_scale=False),
            dict(empty_boundary=True, row_scale=True),
        ):
            op = make_op(seed=37, **kwargs)
            expected = float((op.csr.data ** 2).sum())
            op2 = make_op(seed=37, **kwargs)
            got = op2.frobenius_norm_sq()
            assert op2._csr is None, "frobenius materialised the stack"
            np.testing.assert_allclose(got, expected, rtol=1e-12)


class TestBackendEquivalenceEndToEnd:
    """Seeded training is bit-compatible across backend families."""

    def test_trainer_losses_and_bytes_match(self, small_graph):
        from repro.core import BoundaryNodeSampler, DistributedTrainer
        from repro.nn import GCNModel
        from repro.partition import partition_graph

        part = partition_graph(small_graph, 4, method="metis", seed=0)

        def run(backend):
            model = GCNModel(
                small_graph.feature_dim, 8, small_graph.num_classes, 2, 0.0,
                np.random.default_rng(1),
            )
            t = DistributedTrainer(
                small_graph, part, model, BoundaryNodeSampler(0.5),
                lr=0.01, seed=0, aggregation="sym", kernel_backend=backend,
            )
            losses = [t.train_epoch() for _ in range(3)]
            return losses, list(t.history.comm_bytes)

        l_fused, b_fused = run("numpy")
        l_split, b_split = run("split")
        assert b_fused == b_split  # byte-identical metering
        np.testing.assert_allclose(l_fused, l_split, rtol=1e-9)
