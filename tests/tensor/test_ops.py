"""Gradient and behaviour tests for every op in repro.tensor.ops."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    concat_cols,
    concat_rows,
    dropout,
    exp,
    gather_rows,
    leaky_relu,
    log,
    log_softmax,
    relu,
    scatter_rows,
    segment_softmax,
    segment_sum,
    sigmoid,
    softmax,
    stack_mean,
    tanh,
)

from ..util import check_gradients


class TestActivations:
    def test_exp_grad(self):
        check_gradients(lambda a: exp(a).sum(), [np.random.rand(3, 2)])

    def test_log_grad(self):
        check_gradients(lambda a: log(a).sum(), [np.random.rand(3) + 0.5])

    def test_relu_forward(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        x = np.array([-1.0, 0.5, 2.0])
        check_gradients(lambda a: relu(a).sum(), [x])

    def test_leaky_relu_forward(self):
        out = leaky_relu(Tensor([-2.0, 4.0]), 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 4.0])

    def test_leaky_relu_grad(self):
        check_gradients(
            lambda a: leaky_relu(a, 0.2).sum(), [np.array([-1.5, 0.3, 2.0])]
        )

    def test_sigmoid_range(self):
        out = sigmoid(Tensor(np.linspace(-10, 10, 21)))
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_sigmoid_grad(self):
        check_gradients(lambda a: sigmoid(a).sum(), [np.random.randn(4)])

    def test_tanh_grad(self):
        check_gradients(lambda a: tanh(a).sum(), [np.random.randn(4)])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(np.random.randn(5, 7)))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_shift_invariance(self):
        x = np.random.randn(3, 4)
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b)

    def test_softmax_grad(self):
        check_gradients(
            lambda a: (softmax(a) * softmax(a)).sum(), [np.random.randn(3, 4)]
        )

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.randn(4, 5)
        np.testing.assert_allclose(
            log_softmax(Tensor(x)).data, np.log(softmax(Tensor(x)).data)
        )

    def test_log_softmax_grad(self):
        check_gradients(lambda a: (log_softmax(a) ** 2).sum(), [np.random.randn(3, 4)])

    def test_log_softmax_large_values_stable(self):
        out = log_softmax(Tensor(np.array([[1000.0, 0.0]])))
        assert np.isfinite(out.data).all()


class TestDropout:
    def test_eval_mode_identity(self):
        x = Tensor(np.random.rand(10))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_identity(self):
        x = Tensor(np.random.rand(10))
        out = dropout(x, 0.0, np.random.default_rng(0))
        assert out is x

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, np.random.default_rng(0))

    def test_inverted_scaling_preserves_mean(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 50)))
        out = dropout(x, 0.3, rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_mask_reused_in_backward(self):
        rng = np.random.default_rng(1)
        x = Tensor(np.ones(1000), requires_grad=True)
        out = dropout(x, 0.5, rng)
        out.sum().backward()
        # Gradient must be exactly the forward mask (0 or 1/keep).
        np.testing.assert_allclose(x.grad, out.data)

    def test_deterministic_given_rng(self):
        x = Tensor(np.ones(100))
        a = dropout(x, 0.5, np.random.default_rng(7)).data
        b = dropout(x, 0.5, np.random.default_rng(7)).data
        np.testing.assert_array_equal(a, b)


class TestGatherScatter:
    def test_gather_forward(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = gather_rows(x, np.array([2, 0]))
        np.testing.assert_array_equal(out.data, [[6.0, 7.0, 8.0], [0.0, 1.0, 2.0]])

    def test_gather_grad(self):
        check_gradients(
            lambda a: (gather_rows(a, np.array([0, 2, 2])) ** 2).sum(),
            [np.random.rand(4, 3)],
        )

    def test_gather_duplicate_rows_accumulate(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = gather_rows(x, np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 0], [3, 3], [0, 0]])

    def test_scatter_forward(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        out = scatter_rows(x, np.array([0, 0, 2]), 3)
        np.testing.assert_array_equal(out.data, [[4.0, 6.0], [0.0, 0.0], [5.0, 6.0]])

    def test_scatter_grad(self):
        check_gradients(
            lambda a: (scatter_rows(a, np.array([0, 1, 0]), 2) ** 2).sum(),
            [np.random.rand(3, 2)],
        )

    def test_gather_scatter_duality(self):
        # scatter(gather(x, idx), idx) has gradient = scatter-of-gather.
        idx = np.array([0, 2])
        x = Tensor(np.random.rand(3, 2), requires_grad=True)
        out = scatter_rows(gather_rows(x, idx), np.arange(2), 2)
        out.sum().backward()
        expected = np.zeros((3, 2))
        expected[idx] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_segment_sum_matches_scatter(self):
        x = np.random.rand(5, 3)
        ids = np.array([0, 1, 0, 2, 1])
        a = segment_sum(Tensor(x), ids, 3).data
        b = scatter_rows(Tensor(x), ids, 3).data
        np.testing.assert_array_equal(a, b)


class TestSegmentSoftmax:
    def test_segments_sum_to_one(self):
        scores = Tensor(np.random.randn(8))
        ids = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        out = segment_softmax(scores, ids, 3)
        for seg in range(3):
            np.testing.assert_allclose(out.data[ids == seg].sum(), 1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            segment_softmax(Tensor(np.zeros((2, 2))), np.array([0, 0]), 1)

    def test_single_element_segment(self):
        out = segment_softmax(Tensor([5.0]), np.array([0]), 1)
        np.testing.assert_allclose(out.data, [1.0])

    def test_grad(self):
        ids = np.array([0, 0, 1, 1, 1])
        check_gradients(
            lambda a: (segment_softmax(a, ids, 2) ** 2).sum(),
            [np.random.randn(5)],
        )

    def test_matches_dense_softmax_per_segment(self):
        from repro.tensor import softmax

        scores = np.random.randn(6)
        ids = np.array([0, 0, 0, 1, 1, 1])
        seg = segment_softmax(Tensor(scores), ids, 2).data
        dense0 = softmax(Tensor(scores[:3])).data
        dense1 = softmax(Tensor(scores[3:])).data
        np.testing.assert_allclose(seg, np.concatenate([dense0, dense1]))


class TestConcat:
    def test_concat_rows_forward(self):
        a, b = np.random.rand(2, 3), np.random.rand(4, 3)
        out = concat_rows([Tensor(a), Tensor(b)])
        np.testing.assert_array_equal(out.data, np.vstack([a, b]))

    def test_concat_rows_grad(self):
        check_gradients(
            lambda a, b: (concat_rows([a, b]) ** 2).sum(),
            [np.random.rand(2, 3), np.random.rand(3, 3)],
        )

    def test_concat_cols_forward(self):
        a, b = np.random.rand(3, 2), np.random.rand(3, 4)
        out = concat_cols([Tensor(a), Tensor(b)])
        np.testing.assert_array_equal(out.data, np.hstack([a, b]))

    def test_concat_cols_grad(self):
        check_gradients(
            lambda a, b: (concat_cols([a, b]) ** 2).sum(),
            [np.random.rand(3, 2), np.random.rand(3, 1)],
        )

    def test_concat_three_blocks(self):
        blocks = [np.random.rand(i + 1, 2) for i in range(3)]
        out = concat_rows([Tensor(b) for b in blocks])
        assert out.shape == (6, 2)


class TestStackMean:
    def test_forward(self):
        a, b = np.ones((2, 2)), 3 * np.ones((2, 2))
        out = stack_mean([Tensor(a), Tensor(b)])
        np.testing.assert_array_equal(out.data, 2 * np.ones((2, 2)))

    def test_grad_split_evenly(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack_mean([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(3, 0.5))
        np.testing.assert_allclose(b.grad, np.full(3, 0.5))
