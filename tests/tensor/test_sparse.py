"""SparseOp and spmm: structure ops and autograd correctness."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import SparseOp, Tensor, spmm

from ..util import check_gradients


def random_sparse(rows, cols, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    m = sp.random(rows, cols, density=density, random_state=np.random.RandomState(seed))
    return SparseOp(m.tocsr())


class TestSparseOp:
    def test_shape_and_nnz(self):
        op = SparseOp(sp.eye(4, format="csr"))
        assert op.shape == (4, 4)
        assert op.nnz == 4

    def test_select_columns(self):
        dense = np.arange(12.0).reshape(3, 4)
        op = SparseOp(sp.csr_matrix(dense))
        sub = op.select_columns(np.array([3, 1]))
        np.testing.assert_array_equal(sub.toarray(), dense[:, [3, 1]])

    def test_select_columns_with_scale(self):
        dense = np.ones((2, 3))
        op = SparseOp(sp.csr_matrix(dense))
        sub = op.select_columns(np.array([0]), scale=10.0)
        np.testing.assert_array_equal(sub.toarray(), [[10.0], [10.0]])

    def test_scale_columns(self):
        op = SparseOp(sp.csr_matrix(np.ones((2, 3))))
        scaled = op.scale_columns(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(scaled.toarray(), [[1, 2, 3], [1, 2, 3]])

    def test_hstack(self):
        a = SparseOp(sp.csr_matrix(np.ones((2, 2))))
        b = SparseOp(sp.csr_matrix(2 * np.ones((2, 1))))
        out = a.hstack(b)
        np.testing.assert_array_equal(out.toarray(), [[1, 1, 2], [1, 1, 2]])

    def test_transpose(self):
        m = np.array([[1.0, 2.0], [0.0, 3.0]])
        op = SparseOp(sp.csr_matrix(m))
        np.testing.assert_array_equal(op.transpose().toarray(), m.T)

    def test_frobenius_norm_sq(self):
        m = np.array([[3.0, 0.0], [0.0, 4.0]])
        op = SparseOp(sp.csr_matrix(m))
        assert op.frobenius_norm_sq() == pytest.approx(25.0)

    def test_repr(self):
        assert "nnz" in repr(SparseOp(sp.eye(2)))


class TestSpmm:
    def test_forward_matches_dense(self):
        op = random_sparse(5, 4, seed=1)
        h = np.random.rand(4, 3)
        out = spmm(op, Tensor(h))
        np.testing.assert_allclose(out.data, op.toarray() @ h)

    def test_gradient_is_transpose(self):
        op = random_sparse(5, 4, seed=2)
        h = Tensor(np.random.rand(4, 3), requires_grad=True)
        spmm(op, h).sum().backward()
        expected = op.toarray().T @ np.ones((5, 3))
        np.testing.assert_allclose(h.grad, expected)

    def test_gradient_numerical(self):
        op = random_sparse(4, 6, seed=3)
        check_gradients(lambda h: (spmm(op, h) ** 2).sum(), [np.random.rand(6, 2)])

    def test_chained_spmm(self):
        # Two propagation steps, like a 2-layer GCN.
        op = SparseOp(sp.eye(3, format="csr") * 0.5)
        h = Tensor(np.ones((3, 2)), requires_grad=True)
        out = spmm(op, spmm(op, h))
        out.sum().backward()
        np.testing.assert_allclose(h.grad, np.full((3, 2), 0.25))

    def test_empty_matrix(self):
        op = SparseOp(sp.csr_matrix((3, 4)))
        out = spmm(op, Tensor(np.random.rand(4, 2)))
        np.testing.assert_array_equal(out.data, np.zeros((3, 2)))

    def test_no_grad_constant_input(self):
        op = random_sparse(3, 3)
        h = Tensor(np.random.rand(3, 2))
        out = spmm(op, h)
        assert not out.requires_grad
