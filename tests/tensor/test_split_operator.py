"""SplitOperator: split-form SpMM forward/backward vs the stacked matrix."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import SplitOperator, Tensor, spmm


def make_blocks(n_in=7, n_bd=5, density=0.4, seed=0):
    rng = np.random.RandomState(seed)
    inner = sp.random(n_in, n_in, density=density, random_state=rng).tocsr()
    boundary = sp.random(n_in, n_bd, density=density, random_state=rng).tocsc()
    return inner, boundary


class TestStructure:
    def test_shape_and_nnz(self):
        inner, bd = make_blocks()
        kept = np.array([0, 2, 4])
        op = SplitOperator.select(inner, bd, kept)
        assert op.shape == (7, 7 + 3)
        assert op.nnz == op.inner_nnz + op.boundary_nnz
        assert op.inner_nnz == inner.nnz
        assert op.boundary_nnz == bd[:, kept].nnz

    def test_empty_boundary(self):
        inner, bd = make_blocks()
        op = SplitOperator.select(inner, bd, np.empty(0, dtype=np.int64))
        assert op.shape == (7, 7)
        assert op.boundary is None
        np.testing.assert_allclose(op.toarray(), inner.toarray())

    def test_kept_cols_default(self):
        inner, bd = make_blocks()
        op = SplitOperator(inner, bd)
        np.testing.assert_array_equal(op.kept_cols, np.arange(5))

    def test_csr_matches_manual_stack(self):
        inner, bd = make_blocks()
        kept = np.array([1, 3])
        rs = np.linspace(0.5, 1.5, 7)
        op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=2.0)
        manual = sp.diags(rs) @ sp.hstack([inner, bd[:, kept] * 2.0])
        np.testing.assert_allclose(op.toarray(), manual.toarray(), atol=1e-12)

    def test_unit_col_scale_dropped(self):
        inner, bd = make_blocks()
        op = SplitOperator(inner, bd, col_scale=1.0)
        assert op.col_scale is None


class TestVectorColScale:
    """Per-column scale vectors (importance sampling's HT weights)."""

    def make_op(self, seed=20, row_scale=False):
        inner, bd = make_blocks(seed=seed)
        kept = np.array([0, 2, 3])
        cs = np.array([0.5, 2.0, 4.0])
        rs = (
            np.abs(np.random.default_rng(seed + 1).normal(size=7)) + 0.1
            if row_scale else None
        )
        op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=cs)
        manual = sp.hstack([inner, bd[:, kept] @ sp.diags(cs)])
        if rs is not None:
            manual = sp.diags(rs) @ manual
        return op, manual.tocsr(), cs

    def test_csr_matches_manual_diag(self):
        op, manual, _ = self.make_op(row_scale=True)
        np.testing.assert_allclose(op.toarray(), manual.toarray(), atol=1e-12)

    @pytest.mark.parametrize("row_scale", [False, True])
    def test_forward_backward_match_stacked(self, row_scale):
        op, manual, _ = self.make_op(seed=21, row_scale=row_scale)
        h = np.random.default_rng(1).normal(size=(op.shape[1], 5))
        np.testing.assert_allclose(op.matmul(h), manual @ h, atol=1e-12)
        g = np.random.default_rng(2).normal(size=(7, 5))
        np.testing.assert_allclose(op.rmatmul(g), manual.T @ g, atol=1e-12)

    def test_vector_operand(self):
        op, manual, _ = self.make_op(seed=22)
        ones = np.ones(op.shape[1])
        np.testing.assert_allclose(op.matmul(ones), manual @ ones, atol=1e-12)
        g = np.ones(7)
        np.testing.assert_allclose(op.rmatmul(g), manual.T @ g, atol=1e-12)

    def test_astype_casts_vector(self):
        op, _, _ = self.make_op(seed=23)
        op32 = op.astype(np.float32)
        assert op32.col_scale.dtype == np.float32
        h = np.random.default_rng(3).normal(size=(op.shape[1], 2)).astype(
            np.float32
        )
        assert op32.matmul(h).dtype == np.float32

    def test_wrong_length_vector_rejected(self):
        inner, bd = make_blocks()
        with pytest.raises(ValueError, match="col_scale"):
            SplitOperator.select(
                inner, bd, np.array([0, 1]), col_scale=np.array([1.0])
            )

    def test_empty_boundary_drops_col_scale(self):
        inner, bd = make_blocks()
        op = SplitOperator.select(
            inner, bd, np.empty(0, dtype=np.int64),
            col_scale=np.empty(0),
        )
        assert op.col_scale is None

    def test_autograd_through_vector_scale(self):
        inner, bd = make_blocks(seed=24)
        kept = np.array([1, 4])
        cs = np.array([3.0, 0.25])
        op = SplitOperator.select(inner, bd, kept, col_scale=cs)
        h = Tensor(np.random.default_rng(5).normal(size=(op.shape[1], 3)),
                   requires_grad=True)
        out = spmm(op, h)
        w = np.random.default_rng(6).normal(size=out.shape)
        (out * Tensor(w)).sum().backward()
        np.testing.assert_allclose(h.grad, op.csr.T @ w, atol=1e-9)


class TestSplitSpmm:
    @pytest.mark.parametrize("row_scale", [False, True])
    @pytest.mark.parametrize("col_scale", [None, 3.0])
    def test_forward_matches_stacked(self, row_scale, col_scale):
        inner, bd = make_blocks(seed=3)
        kept = np.array([0, 1, 4])
        rs = np.abs(np.random.default_rng(1).normal(size=7)) if row_scale else None
        op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=col_scale)
        h = np.random.default_rng(2).normal(size=(op.shape[1], 6))
        split = op.matmul(h)
        stacked = op.csr @ h
        np.testing.assert_allclose(split, stacked, atol=1e-9)

    def test_backward_matches_stacked(self):
        inner, bd = make_blocks(seed=5)
        kept = np.array([2, 3])
        rs = np.abs(np.random.default_rng(4).normal(size=7)) + 0.1
        op = SplitOperator.select(inner, bd, kept, row_scale=rs, col_scale=0.5)
        g = np.random.default_rng(6).normal(size=(7, 4))
        split = op.rmatmul(g)
        stacked = op.csr.T @ g
        np.testing.assert_allclose(split, stacked, atol=1e-9)

    def test_spmm_autograd(self):
        inner, bd = make_blocks(seed=7)
        kept = np.array([0, 3, 4])
        op = SplitOperator.select(inner, bd, kept, col_scale=2.0)
        h = Tensor(np.random.default_rng(8).normal(size=(op.shape[1], 3)),
                   requires_grad=True)
        out = spmm(op, h)
        w = np.random.default_rng(9).normal(size=out.shape)
        (out * Tensor(w)).sum().backward()
        np.testing.assert_allclose(h.grad, op.csr.T @ w, atol=1e-9)

    def test_shared_inner_transpose_used(self):
        inner, bd = make_blocks(seed=11)
        inner_t = inner.T.tocsr()
        op = SplitOperator.select(inner, bd, np.array([1]), inner_t=inner_t)
        assert op.inner_t is inner_t

    def test_vector_operand(self):
        inner, bd = make_blocks(seed=12)
        op = SplitOperator.select(inner, bd, np.array([0, 2]))
        ones = np.ones(op.shape[1])
        np.testing.assert_allclose(op.matmul(ones), op.csr @ ones, atol=1e-12)
