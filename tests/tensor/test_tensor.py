"""Core Tensor semantics: construction, arithmetic, backward."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    as_tensor,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    unbroadcast,
)

from ..util import check_gradients


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == get_default_dtype()

    def test_float32_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float32))
        assert t.dtype == np.float32

    def test_float16_lands_on_default(self):
        t = Tensor(np.zeros(3, dtype=np.float16))
        assert t.dtype == get_default_dtype()

    def test_explicit_dtype_casts(self):
        t = Tensor(np.zeros(3), dtype=np.float32)
        assert t.dtype == np.float32

    def test_int_tensor_allowed_without_grad(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "i"

    def test_int_tensor_rejects_grad(self):
        with pytest.raises(ValueError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalar(self):
        t = as_tensor(2.5)
        assert t.item() == 2.5

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestArithmeticForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0]) + 2.0
        assert out.item() == 3.0

    def test_radd(self):
        out = 2.0 + Tensor([1.0])
        assert out.item() == 3.0

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([3.0])
        assert out.item() == 2.0

    def test_rsub(self):
        out = 5.0 - Tensor([3.0])
        assert out.item() == 2.0

    def test_mul(self):
        out = Tensor([2.0]) * Tensor([4.0])
        assert out.item() == 8.0

    def test_div(self):
        out = Tensor([8.0]) / Tensor([2.0])
        assert out.item() == 4.0

    def test_rdiv(self):
        out = 8.0 / Tensor([2.0])
        assert out.item() == 4.0

    def test_neg(self):
        out = -Tensor([3.0])
        assert out.item() == -3.0

    def test_pow(self):
        out = Tensor([3.0]) ** 2
        assert out.item() == 9.0

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([3.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        np.testing.assert_array_equal((a @ b).data, [[3.0], [7.0]])


class TestBackward:
    def test_requires_scalar(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_explicit_grad_for_vector(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).backward(np.array([1.0, 1.0]))
        np.testing.assert_array_equal(t.grad, [3.0, 3.0])

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1).sum().backward()
        (t * 1).sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0])

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x must give dy/dx = 4x.
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x * x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        z = x * 3
        y = (z + z).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_no_grad_through_constant(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])  # constant
        (a * b).sum().backward()
        assert b.grad is None

    def test_deep_chain_no_recursion_error(self):
        # Iterative topo sort must survive long chains.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestGradientsNumerical:
    def test_add(self):
        check_gradients(lambda a, b: (a + b).sum(), [np.random.rand(3, 2), np.random.rand(3, 2)])

    def test_sub(self):
        check_gradients(lambda a, b: (a - b).sum(), [np.random.rand(4), np.random.rand(4)])

    def test_mul(self):
        check_gradients(lambda a, b: (a * b).sum(), [np.random.rand(2, 3), np.random.rand(2, 3)])

    def test_div(self):
        check_gradients(
            lambda a, b: (a / b).sum(),
            [np.random.rand(3), np.random.rand(3) + 1.0],
        )

    def test_pow(self):
        check_gradients(lambda a: (a ** 3).sum(), [np.random.rand(3) + 0.5])

    def test_matmul(self):
        check_gradients(
            lambda a, b: (a @ b).sum(),
            [np.random.rand(3, 4), np.random.rand(4, 2)],
        )

    def test_matmul_vector_vector(self):
        check_gradients(
            lambda a, b: a @ b,
            [np.random.rand(4), np.random.rand(4)],
        )

    def test_matmul_matrix_vector(self):
        check_gradients(
            lambda a, b: (a @ b).sum(),
            [np.random.rand(3, 4), np.random.rand(4)],
        )

    def test_matmul_vector_matrix(self):
        check_gradients(
            lambda a, b: (a @ b).sum(),
            [np.random.rand(3), np.random.rand(3, 2)],
        )

    def test_broadcast_add_row(self):
        check_gradients(
            lambda a, b: (a + b).sum(),
            [np.random.rand(3, 4), np.random.rand(4)],
        )

    def test_broadcast_mul_scalar_tensor(self):
        check_gradients(
            lambda a, b: (a * b).sum(),
            [np.random.rand(3, 4), np.random.rand(1)],
        )

    def test_getitem_rows(self):
        check_gradients(lambda a: a[1:3].sum(), [np.random.rand(5, 2)])

    def test_transpose(self):
        check_gradients(lambda a: (a.T @ a).sum(), [np.random.rand(3, 2)])

    def test_reshape(self):
        check_gradients(lambda a: (a.reshape(6) ** 2).sum(), [np.random.rand(2, 3)])


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [np.random.rand(3, 4)])

    def test_sum_axis0(self):
        check_gradients(lambda a: (a.sum(axis=0) ** 2).sum(), [np.random.rand(3, 4)])

    def test_sum_axis1_keepdims(self):
        check_gradients(
            lambda a: (a.sum(axis=1, keepdims=True) ** 2).sum(), [np.random.rand(3, 4)]
        )

    def test_mean(self):
        check_gradients(lambda a: a.mean(), [np.random.rand(5)])

    def test_mean_axis(self):
        check_gradients(lambda a: (a.mean(axis=1) ** 2).sum(), [np.random.rand(3, 4)])

    def test_max_all(self):
        # Avoid ties for a clean numerical check.
        x = np.array([[1.0, 5.0], [2.0, 0.5]])
        check_gradients(lambda a: a.max(), [x])

    def test_max_axis(self):
        x = np.array([[1.0, 5.0, 3.0], [2.0, 0.5, 7.0]])
        check_gradients(lambda a: (a.max(axis=1) ** 2).sum(), [x])

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])


class TestNoGrad:
    def test_no_grad_disables_tape(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad
        assert b._parents == ()

    def test_grad_mode_restored(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((3, 2))
        assert unbroadcast(g, (3, 2)) is g

    def test_sum_leading_axis(self):
        g = np.ones((5, 3))
        np.testing.assert_array_equal(unbroadcast(g, (3,)), np.full(3, 5.0))

    def test_sum_kept_axis(self):
        g = np.ones((4, 3))
        np.testing.assert_array_equal(unbroadcast(g, (1, 3)), np.full((1, 3), 4.0))

    def test_scalar_target(self):
        g = np.ones((2, 2))
        np.testing.assert_array_equal(unbroadcast(g, ()), np.array(4.0))
