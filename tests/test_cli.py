"""CLI driver (python -m repro)."""

import pytest

from repro.cli import build_dist_parser, build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "reddit-sim"
        assert args.sampling_rate == 0.1
        assert args.partition_objective == "volume"

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "imagenet"])

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "transformer"])


SMALL = [
    "--scale", "0.05", "--n-partitions", "2", "--n-epochs", "3",
    "--eval-every", "2", "--quiet", "--n-hidden", "8",
]


class TestEndToEnd:
    def test_sage_bns(self, capsys):
        assert main(SMALL + ["--sampling-rate", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "test score" in out
        assert "comm / epoch" in out

    def test_vanilla_p1(self, capsys):
        assert main(SMALL + ["--sampling-rate", "1.0"]) == 0

    def test_gcn_model(self, capsys):
        assert main(SMALL + ["--model", "gcn"]) == 0

    def test_gat_model(self, capsys):
        assert main(SMALL + ["--model", "gat", "--n-layers", "2"]) == 0

    def test_bes_sampler(self, capsys):
        assert main(SMALL + ["--sampler", "bes", "--sampling-rate", "0.3"]) == 0

    def test_dropedge_sampler(self, capsys):
        assert main(SMALL + ["--sampler", "dropedge", "--sampling-rate", "0.5"]) == 0

    def test_random_partition(self, capsys):
        assert main(SMALL + ["--partition-method", "random"]) == 0

    def test_cut_objective(self, capsys):
        assert main(SMALL + ["--partition-objective", "cut"]) == 0


DIST_SMALL = [
    "dist-train", "--scale", "0.05", "--n-partitions", "2",
    "--n-epochs", "2", "--n-hidden", "8", "--dropout", "0.0", "--quiet",
]


class TestDistTrain:
    def test_dist_parser_defaults(self):
        args = build_dist_parser().parse_args([])
        assert args.transport == "multiprocess"
        assert args.allreduce == "ring"
        assert args.schedule == "synchronous"

    def test_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            build_dist_parser().parse_args(["--transport", "carrier-pigeon"])

    def test_rejects_unknown_schedule(self):
        with pytest.raises(SystemExit):
            build_dist_parser().parse_args(["--schedule", "eager"])

    def test_pipelined_schedule_end_to_end(self, capsys):
        assert main(DIST_SMALL + ["--transport", "local",
                                  "--schedule", "pipelined",
                                  "--sampling-rate", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "pipelined" in out
        assert "blocked in recv" in out

    def test_local_transport_end_to_end(self, capsys):
        assert main(DIST_SMALL + ["--transport", "local"]) == 0
        out = capsys.readouterr().out
        assert "dist-train summary" in out
        assert "bytes [reduce]" in out

    def test_multiprocess_transport_end_to_end(self, capsys):
        assert main(DIST_SMALL + ["--transport", "multiprocess",
                                  "--sampling-rate", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "multiprocess" in out

    def test_tree_allreduce(self, capsys):
        assert main(DIST_SMALL + ["--transport", "local",
                                  "--allreduce", "tree"]) == 0
