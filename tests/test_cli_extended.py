"""CLI: the pipelining / scheduling / checkpointing / spectral flags."""

import pytest

from repro.cli import build_parser, main

SMALL = [
    "--scale", "0.05", "--n-partitions", "2", "--n-epochs", "3",
    "--eval-every", "2", "--quiet", "--n-hidden", "8",
]


class TestParserFlags:
    def test_new_defaults(self):
        args = build_parser().parse_args([])
        assert not args.pipelined
        assert args.patience == 0
        assert args.lr_schedule == "none"
        assert args.save_checkpoint is None and args.resume is None

    def test_spectral_method_accepted(self):
        args = build_parser().parse_args(["--partition-method", "spectral"])
        assert args.partition_method == "spectral"

    def test_rejects_unknown_schedule(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--lr-schedule", "exponential"])


class TestEndToEnd:
    def test_pipelined(self, capsys):
        assert main(SMALL + ["--pipelined"]) == 0
        assert "test score" in capsys.readouterr().out

    def test_pipelined_gat_rejected(self, capsys):
        assert main(SMALL + ["--pipelined", "--model", "gat"]) == 2
        assert "not supported" in capsys.readouterr().err

    def test_spectral_partition(self, capsys):
        assert main(SMALL + ["--partition-method", "spectral"]) == 0

    def test_step_schedule(self, capsys):
        assert main(SMALL + ["--lr-schedule", "step"]) == 0

    def test_cosine_schedule_with_patience(self, capsys):
        assert main(SMALL + ["--lr-schedule", "cosine", "--patience", "2"]) == 0

    def test_checkpoint_roundtrip(self, tmp_path, capsys):
        ck = str(tmp_path / "model")
        assert main(SMALL + ["--save-checkpoint", ck]) == 0
        assert main(SMALL + ["--resume", ck + ".npz"]) == 0

    def test_resume_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(SMALL + ["--resume", str(tmp_path / "nope")])
