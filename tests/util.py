"""Shared test utilities: numerical gradient checking and tiny graphs."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.tensor import Tensor


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn wrt inputs[wrt]."""
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[wrt])
    it = np.nditer(base[wrt], flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = base[wrt][idx]
        base[wrt][idx] = orig + eps
        plus = fn(*[Tensor(x) for x in base]).item()
        base[wrt][idx] = orig - eps
        minus = fn(*[Tensor(x) for x in base]).item()
        base[wrt][idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-6,
    rtol: float = 1e-5,
) -> None:
    """Assert autograd gradients match central differences for every input."""
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(*tensors)
    out.backward()
    for i, t in enumerate(tensors):
        expected = numerical_grad(fn, inputs, wrt=i)
        got = t.grad if t.grad is not None else np.zeros_like(expected)
        np.testing.assert_allclose(
            got, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )


def ring_graph(n: int) -> sp.csr_matrix:
    """Symmetric ring adjacency: node i ~ i±1 (mod n)."""
    rows = np.arange(n)
    cols = (rows + 1) % n
    data = np.ones(n)
    upper = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
    adj = (upper + upper.T).tocsr()
    adj.data[:] = 1.0
    return adj


def grid_graph(rows: int, cols: int) -> sp.csr_matrix:
    """4-neighbour grid adjacency."""
    n = rows * cols
    r, c = [], []
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            if j + 1 < cols:
                r.append(v)
                c.append(v + 1)
            if i + 1 < rows:
                r.append(v)
                c.append(v + cols)
    upper = sp.coo_matrix((np.ones(len(r)), (r, c)), shape=(n, n))
    adj = (upper + upper.T).tocsr()
    adj.data[:] = 1.0
    return adj
